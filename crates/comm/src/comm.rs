//! MPI-style communicators with pluggable collective backends.
//!
//! Each logical rank runs on its own OS thread with private data; ranks
//! interact *only* through the [`Collectives`] operations, so algorithms
//! written against [`Communicator`] have the same structure as their MPI
//! counterparts. Two backends implement the surface:
//!
//! * [`Rendezvous`] — a centralized shared-memory slot: every collective is
//!   an all-deposit/all-take barrier on one mutex. Semantically the
//!   simplest possible implementation; kept as the oracle the p2p backend
//!   is tested against.
//! * [`P2p`] — per-rank-pair bounded channels running real
//!   message-passing schedules (dissemination barrier, ring all-gather,
//!   distance-doubling all-reduce, ring reduce-scatter, binomial
//!   broadcast/gather/scatter, pairwise all-to-all), so message counts and
//!   wall time are *measured* on the wire, not just modeled.
//!
//! Every collective charges the rank's [`CostLedger`] with the §II-E model
//! costs of the paper — identically on both backends, so modeled cost
//! reports stay comparable across backends:
//!
//! * All-Gather:      `log P · α + n·δ(P) · β`
//! * Reduce-Scatter:  `log P · α + n·δ(P) · β` (plus `n` flops for the sum)
//! * All-Reduce:      `2 log P · α + 2n·δ(P) · β`
//! * Broadcast:       `log P · α + n·δ(P) · β`
//! * All-to-All:      `log P · α + n·δ(P) · β`
//! * Barrier:         `log P · α`
//!
//! The p2p backend additionally records the *actual* per-rank wire traffic
//! in [`TransportCounters`], available via
//! [`Communicator::transport_stats`].
//!
//! Reductions on both backends sum contributions in ascending rank order,
//! so all collectives produce bitwise-identical results across backends.

use crate::abort::Abort;
use crate::cost::CostLedger;
use crate::p2p::{P2p, TransportCounters};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// Which collective implementation a world uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Centralized all-deposit/all-take rendezvous slot (the oracle).
    #[default]
    Rendezvous,
    /// Point-to-point channel transport with real collective schedules.
    P2p,
}

impl Backend {
    /// Accepted names, in the order reported by parse errors.
    pub const NAMES: [&'static str; 2] = ["rendezvous", "p2p"];
    /// All backends, for parametrizing tests and benches.
    pub const ALL: [Backend; 2] = [Backend::Rendezvous, Backend::P2p];

    /// Canonical lowercase name.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Rendezvous => "rendezvous",
            Backend::P2p => "p2p",
        }
    }

    /// Read `PP_COMM_BACKEND` from the environment; unset or empty means
    /// [`Backend::Rendezvous`], unknown values warn and fall back.
    pub fn from_env() -> Self {
        match std::env::var("PP_COMM_BACKEND") {
            Ok(s) if s.is_empty() => Backend::default(),
            Ok(s) => s.parse().unwrap_or_else(|e| {
                eprintln!("PP_COMM_BACKEND: {e}; using rendezvous");
                Backend::default()
            }),
            Err(_) => Backend::default(),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rendezvous" => Ok(Backend::Rendezvous),
            "p2p" => Ok(Backend::P2p),
            other => Err(format!(
                "unknown backend '{}' (expected one of {})",
                other,
                Backend::NAMES.join("|")
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// The collective surface
// ---------------------------------------------------------------------------

/// The collective-communication surface shared by all backends.
///
/// Implementations must be deterministic: for the same inputs on every
/// rank, every collective returns bitwise-identical results regardless of
/// backend or thread scheduling. In particular, reductions sum
/// contributions in ascending rank order.
pub trait Collectives {
    /// This rank's index within the group.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn size(&self) -> usize;

    /// The cost ledger charged by this communicator's collectives.
    fn ledger(&self) -> &CostLedger;

    /// Synchronize all ranks in the group.
    fn barrier(&self);

    /// Gather equal-length contributions from every rank; the result is the
    /// concatenation in rank order, stored on every rank.
    fn all_gather(&self, v: &[f64]) -> Vec<f64>;

    /// Variable-length all-gather; returns per-rank vectors.
    fn all_gather_v(&self, v: &[f64]) -> Vec<Vec<f64>>;

    /// Element-wise sum of equal-length vectors, replicated on all ranks.
    fn all_reduce_sum(&self, v: &[f64]) -> Vec<f64>;

    /// Sum equal-length vectors and scatter the result: rank `i` receives
    /// the segment `[offsets[i], offsets[i] + counts[i])` of the sum.
    /// `counts` must sum to the vector length.
    fn reduce_scatter_sum(&self, v: &[f64], counts: &[usize]) -> Vec<f64>;

    /// Broadcast `v` from `root` to every rank.
    fn broadcast(&self, root: usize, v: &[f64]) -> Vec<f64>;

    /// Gather variable-length contributions onto `root` only (others get
    /// an empty vec). Cost charged: `log P · α + n·δ(P) · β`.
    fn gather(&self, root: usize, v: &[f64]) -> Vec<Vec<f64>>;

    /// Scatter: `root` provides one chunk per rank; every rank receives its
    /// chunk. Non-root ranks pass anything (ignored).
    fn scatter(&self, root: usize, chunks: Vec<Vec<f64>>) -> Vec<f64>;

    /// Point-to-point exchange round: every rank offers at most one message
    /// `(dest, payload)`; returns the message addressed to this rank, if
    /// any. (A BSP-superstep formulation of send/recv: all ranks of the
    /// group must call this together.)
    fn sendrecv_round(&self, msg: Option<(usize, Vec<f64>)>) -> Option<Vec<f64>>;

    /// Personalized all-to-all: `chunks[j]` is sent to rank `j`; the result
    /// concatenates the chunks every rank addressed to us, in rank order.
    fn all_to_all(&self, chunks: Vec<Vec<f64>>) -> Vec<Vec<f64>>;

    /// Split into sub-communicators by `color`; ranks sharing a color form a
    /// group ordered by `(key, parent rank)`.
    fn split(&self, color: i64, key: i64) -> Self
    where
        Self: Sized;
}

// ---------------------------------------------------------------------------
// §II-E model charges, shared verbatim by both backends
// ---------------------------------------------------------------------------

/// Ledger charges for the §II-E closed forms. Both backends call these with
/// the same arguments, so the modeled ledger is identical by construction;
/// the p2p backend tracks its real wire traffic separately.
pub(crate) mod charge {
    use crate::cost::CostLedger;

    #[inline]
    pub fn log_p(size: usize) -> u64 {
        (size.max(2) as f64).log2().ceil() as u64
    }

    #[inline]
    pub fn delta(size: usize) -> u64 {
        u64::from(size > 1)
    }

    pub fn barrier(l: &CostLedger, p: usize) {
        l.charge_messages(log_p(p));
    }

    pub fn all_gather(l: &CostLedger, p: usize, total_words: usize) {
        l.charge_messages(log_p(p));
        l.charge_comm_words(delta(p) * total_words as u64);
    }

    pub fn all_reduce(l: &CostLedger, p: usize, n: usize) {
        l.charge_messages(2 * log_p(p));
        l.charge_comm_words(2 * delta(p) * n as u64);
        l.charge_flops(delta(p) * n as u64);
    }

    pub fn reduce_scatter(l: &CostLedger, p: usize, n: usize) {
        l.charge_messages(log_p(p));
        l.charge_comm_words(delta(p) * n as u64);
        l.charge_flops(delta(p) * n as u64);
    }

    pub fn broadcast(l: &CostLedger, p: usize, n: usize) {
        l.charge_messages(log_p(p));
        l.charge_comm_words(delta(p) * n as u64);
    }

    pub fn gather(l: &CostLedger, p: usize, total_words: usize) {
        l.charge_messages(log_p(p));
        l.charge_comm_words(delta(p) * total_words as u64);
    }

    pub fn scatter(l: &CostLedger, p: usize, mine_words: usize) {
        l.charge_messages(log_p(p));
        l.charge_comm_words(delta(p) * mine_words as u64);
    }

    pub fn all_to_all(l: &CostLedger, p: usize, n: usize) {
        l.charge_messages(log_p(p));
        l.charge_comm_words(delta(p) * n as u64);
    }

    pub fn sendrecv(l: &CostLedger, p: usize, sent_words: usize, recv_words: usize) {
        l.charge_messages(u64::from(sent_words + recv_words > 0));
        l.charge_comm_words(delta(p) * (sent_words + recv_words) as u64);
    }

    pub fn split(l: &CostLedger, p: usize) {
        l.charge_messages(log_p(p));
    }
}

// ---------------------------------------------------------------------------
// Rendezvous backend
// ---------------------------------------------------------------------------

type AnyBox = Box<dyn Any + Send + Sync>;

/// Phase of the rendezvous slot: ranks deposit, then all take the combined
/// result, then the slot resets.
enum Phase {
    Collecting,
    Distributing,
}

struct Slot {
    phase: Phase,
    arrived: usize,
    taken: usize,
    deposits: Vec<Option<AnyBox>>,
    all: Option<Arc<Vec<AnyBox>>>,
}

/// Shared state of one rendezvous group (one per process group).
struct GroupState {
    size: usize,
    slot: Mutex<Slot>,
    cv: Condvar,
    /// Registry for `split`: maps (split sequence number, color) to the
    /// freshly created child group, so all members agree on one state.
    splits: Mutex<HashMap<(u64, i64), Arc<GroupState>>>,
    split_seq: Mutex<u64>,
    /// World-wide poison flag, shared with every sub-group.
    abort: Abort,
}

impl GroupState {
    fn new(size: usize, abort: Abort) -> Arc<Self> {
        let state = Arc::new(GroupState {
            size,
            slot: Mutex::new(Slot {
                phase: Phase::Collecting,
                arrived: 0,
                taken: 0,
                deposits: (0..size).map(|_| None).collect(),
                all: None,
            }),
            cv: Condvar::new(),
            splits: Mutex::new(HashMap::new()),
            split_seq: Mutex::new(0),
            abort: abort.clone(),
        });
        let weak = Arc::downgrade(&state);
        abort.register(Box::new(move || {
            if let Some(s) = weak.upgrade() {
                let _g = s.slot.lock();
                s.cv.notify_all();
            }
        }));
        state
    }

    /// The core primitive: every member deposits a value and receives a
    /// shared view of all deposits, indexed by group rank.
    fn exchange(&self, rank: usize, value: AnyBox) -> Arc<Vec<AnyBox>> {
        let mut g = self.slot.lock();
        // Wait out the draining phase of the previous round.
        while !matches!(g.phase, Phase::Collecting) {
            self.abort.check();
            self.cv.wait(&mut g);
        }
        debug_assert!(g.deposits[rank].is_none(), "rank {rank} double deposit");
        g.deposits[rank] = Some(value);
        g.arrived += 1;
        if g.arrived == self.size {
            let all: Vec<AnyBox> = g.deposits.iter_mut().map(|d| d.take().unwrap()).collect();
            g.all = Some(Arc::new(all));
            g.phase = Phase::Distributing;
            g.taken = 0;
            self.cv.notify_all();
        } else {
            while matches!(g.phase, Phase::Collecting) {
                self.abort.check();
                self.cv.wait(&mut g);
            }
        }
        let res = g.all.clone().expect("distribution phase must hold result");
        g.taken += 1;
        if g.taken == self.size {
            g.all = None;
            g.arrived = 0;
            g.phase = Phase::Collecting;
            self.cv.notify_all();
        }
        res
    }
}

/// The centralized rendezvous backend: every collective is an
/// all-deposit/all-take barrier on one shared slot.
///
/// Clones and sub-communicators created by [`Collectives::split`] share the
/// rank's cost ledger.
#[derive(Clone)]
pub struct Rendezvous {
    state: Arc<GroupState>,
    rank: usize,
    size: usize,
    ledger: CostLedger,
}

impl Rendezvous {
    /// Create the world for `size` ranks. Returned in rank order; each must
    /// be moved to its own thread.
    pub fn world(size: usize) -> Vec<Rendezvous> {
        assert!(size > 0);
        let state = GroupState::new(size, Abort::new());
        (0..size)
            .map(|rank| Rendezvous {
                state: state.clone(),
                rank,
                size,
                ledger: CostLedger::new(),
            })
            .collect()
    }

    /// Poison the world: every rank blocked in a collective (on any
    /// sub-communicator of this world) wakes up and panics.
    pub(crate) fn abort(&self) {
        self.state.abort.set();
    }

    fn gather_internal(&self, v: &[f64]) -> Arc<Vec<AnyBox>> {
        self.state.exchange(self.rank, Box::new(v.to_vec()))
    }
}

fn slice_of(b: &AnyBox) -> &[f64] {
    b.downcast_ref::<Vec<f64>>()
        .expect("collective deposit type mismatch")
}

impl Collectives for Rendezvous {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    fn barrier(&self) {
        charge::barrier(&self.ledger, self.size);
        let _ = self.state.exchange(self.rank, Box::new(()));
    }

    fn all_gather(&self, v: &[f64]) -> Vec<f64> {
        let res = self.gather_internal(v);
        let total: usize = res.iter().map(|r| slice_of(r).len()).sum();
        charge::all_gather(&self.ledger, self.size, total);
        let mut out = Vec::with_capacity(total);
        for r in res.iter() {
            out.extend_from_slice(slice_of(r));
        }
        out
    }

    fn all_gather_v(&self, v: &[f64]) -> Vec<Vec<f64>> {
        let res = self.gather_internal(v);
        let total: usize = res.iter().map(|r| slice_of(r).len()).sum();
        charge::all_gather(&self.ledger, self.size, total);
        res.iter().map(|r| slice_of(r).to_vec()).collect()
    }

    fn all_reduce_sum(&self, v: &[f64]) -> Vec<f64> {
        let res = self.gather_internal(v);
        charge::all_reduce(&self.ledger, self.size, v.len());
        let mut out = vec![0.0f64; v.len()];
        for r in res.iter() {
            let s = slice_of(r);
            assert_eq!(s.len(), out.len(), "all_reduce length mismatch");
            for (o, x) in out.iter_mut().zip(s.iter()) {
                *o += x;
            }
        }
        out
    }

    fn reduce_scatter_sum(&self, v: &[f64], counts: &[usize]) -> Vec<f64> {
        assert_eq!(counts.len(), self.size, "one count per rank required");
        let total: usize = counts.iter().sum();
        assert_eq!(total, v.len(), "counts must cover the whole vector");
        let res = self.gather_internal(v);
        charge::reduce_scatter(&self.ledger, self.size, v.len());
        let offset: usize = counts[..self.rank].iter().sum();
        let mine = counts[self.rank];
        let mut out = vec![0.0f64; mine];
        for r in res.iter() {
            let s = slice_of(r);
            for (o, x) in out.iter_mut().zip(s[offset..offset + mine].iter()) {
                *o += x;
            }
        }
        out
    }

    fn broadcast(&self, root: usize, v: &[f64]) -> Vec<f64> {
        let payload: Vec<f64> = if self.rank == root {
            v.to_vec()
        } else {
            Vec::new()
        };
        let res = self.state.exchange(self.rank, Box::new(payload));
        let data = slice_of(&res[root]).to_vec();
        charge::broadcast(&self.ledger, self.size, data.len());
        data
    }

    fn gather(&self, root: usize, v: &[f64]) -> Vec<Vec<f64>> {
        let res = self.gather_internal(v);
        let total: usize = res.iter().map(|r| slice_of(r).len()).sum();
        charge::gather(&self.ledger, self.size, total);
        if self.rank == root {
            res.iter().map(|r| slice_of(r).to_vec()).collect()
        } else {
            Vec::new()
        }
    }

    fn scatter(&self, root: usize, chunks: Vec<Vec<f64>>) -> Vec<f64> {
        if self.rank == root {
            assert_eq!(chunks.len(), self.size, "one chunk per rank required");
        }
        let payload: Vec<Vec<f64>> = if self.rank == root {
            chunks
        } else {
            Vec::new()
        };
        let res = self.state.exchange(self.rank, Box::new(payload));
        let all: &Vec<Vec<f64>> = res[root]
            .downcast_ref()
            .expect("scatter deposit type mismatch");
        let mine = all[self.rank].clone();
        charge::scatter(&self.ledger, self.size, mine.len());
        mine
    }

    fn sendrecv_round(&self, msg: Option<(usize, Vec<f64>)>) -> Option<Vec<f64>> {
        if let Some((dest, _)) = &msg {
            assert!(*dest < self.size, "destination out of range");
        }
        let sent_words = msg.as_ref().map_or(0, |(_, p)| p.len());
        let res = self.state.exchange(self.rank, Box::new(msg));
        let mut incoming: Option<Vec<f64>> = None;
        for r in res.iter() {
            let m: &Option<(usize, Vec<f64>)> =
                r.downcast_ref().expect("sendrecv deposit type mismatch");
            if let Some((dest, payload)) = m {
                if *dest == self.rank {
                    assert!(
                        incoming.is_none(),
                        "multiple messages addressed to rank {} in one round",
                        self.rank
                    );
                    incoming = Some(payload.clone());
                }
            }
        }
        let recv_words = incoming.as_ref().map_or(0, |p| p.len());
        charge::sendrecv(&self.ledger, self.size, sent_words, recv_words);
        incoming
    }

    fn all_to_all(&self, chunks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        assert_eq!(chunks.len(), self.size, "one chunk per destination rank");
        let sent: usize = chunks.iter().map(|c| c.len()).sum();
        let res = self.state.exchange(self.rank, Box::new(chunks));
        let mut out = Vec::with_capacity(self.size);
        let mut received = 0usize;
        for r in res.iter() {
            let all: &Vec<Vec<f64>> = r.downcast_ref().expect("all_to_all deposit type mismatch");
            received += all[self.rank].len();
            out.push(all[self.rank].clone());
        }
        charge::all_to_all(&self.ledger, self.size, sent.max(received));
        out
    }

    fn split(&self, color: i64, key: i64) -> Rendezvous {
        // Round 1: agree on a split sequence number and learn all colors.
        let res = self
            .state
            .exchange(self.rank, Box::new((color, key, self.rank)));
        let mut triples: Vec<(i64, i64, usize)> = res
            .iter()
            .map(|r| *r.downcast_ref::<(i64, i64, usize)>().unwrap())
            .collect();
        triples.sort_by_key(|&(c, k, r)| (c, k, r));
        let members: Vec<usize> = triples
            .iter()
            .filter(|&&(c, _, _)| c == color)
            .map(|&(_, _, r)| r)
            .collect();
        let my_new_rank = members.iter().position(|&r| r == self.rank).unwrap();
        let group_size = members.len();

        // Round 2: the lowest-ranked member of each color creates the child
        // state; everyone retrieves it from the parent's registry keyed by a
        // sequence number all ranks advance together.
        let seq = {
            let s = self.state.split_seq.lock();
            // All ranks read the same value; only advance after the barrier
            // below, so do it on first access per round via arrived trick:
            // simplest correct scheme: advance in lockstep after use.
            *s
        };
        if members[0] == self.rank {
            let child = GroupState::new(group_size, self.state.abort.clone());
            self.state.splits.lock().insert((seq, color), child);
        }
        // Make the creation visible to all members before lookup.
        let _ = self.state.exchange(self.rank, Box::new(()));
        let child = self
            .state
            .splits
            .lock()
            .get(&(seq, color))
            .cloned()
            .expect("split registry entry must exist");
        // Advance the sequence number exactly once (rank 0 of the parent),
        // then synchronize so no rank starts the next split early.
        if self.rank == 0 {
            *self.state.split_seq.lock() += 1;
        }
        let _ = self.state.exchange(self.rank, Box::new(()));
        // Garbage-collect registry entries from this round.
        if members[0] == self.rank {
            self.state.splits.lock().remove(&(seq, color));
        }

        charge::split(&self.ledger, self.size);
        Rendezvous {
            state: child,
            rank: my_new_rank,
            size: group_size,
            ledger: self.ledger.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Backend-polymorphic facade
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Inner {
    Rendezvous(Rendezvous),
    P2p(P2p),
}

/// A process group: `rank` of `size` peers that can run collectives, backed
/// by either collective implementation (see [`Backend`]).
///
/// Clones and sub-communicators created by [`Collectives::split`] share the
/// rank's cost ledger. Build worlds with [`CommWorld`].
#[derive(Clone)]
pub struct Communicator {
    inner: Inner,
}

macro_rules! delegate {
    ($self:ident, $c:ident => $e:expr) => {
        match &$self.inner {
            Inner::Rendezvous($c) => $e,
            Inner::P2p($c) => $e,
        }
    };
}

impl Communicator {
    /// Create the world communicators for `size` ranks on the default
    /// (rendezvous) backend. Returned in rank order; each must be moved to
    /// its own thread.
    #[deprecated(
        since = "0.2.0",
        note = "use `CommWorld::new(size).build()` (add `.backend(..)` to choose a backend)"
    )]
    pub fn world(size: usize) -> Vec<Communicator> {
        CommWorld::new(size).build()
    }

    /// This rank's index within the group.
    #[inline]
    pub fn rank(&self) -> usize {
        delegate!(self, c => c.rank())
    }

    /// Number of ranks in the group.
    #[inline]
    pub fn size(&self) -> usize {
        delegate!(self, c => c.size())
    }

    /// The cost ledger charged by this communicator's collectives.
    pub fn ledger(&self) -> &CostLedger {
        delegate!(self, c => c.ledger())
    }

    /// Which backend this communicator runs on.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            Inner::Rendezvous(_) => Backend::Rendezvous,
            Inner::P2p(_) => Backend::P2p,
        }
    }

    /// Measured wire traffic of this rank (messages/words actually sent and
    /// received over channels). `None` on the rendezvous backend, which has
    /// no wire. Sub-communicators share the parent's counters.
    pub fn transport_stats(&self) -> Option<TransportCounters> {
        match &self.inner {
            Inner::Rendezvous(_) => None,
            Inner::P2p(c) => Some(c.wire_counters()),
        }
    }

    /// Poison the world so peers blocked in collectives panic instead of
    /// hanging; used by the runtime when a rank dies.
    pub(crate) fn abort(&self) {
        match &self.inner {
            Inner::Rendezvous(c) => c.abort(),
            Inner::P2p(c) => c.abort(),
        }
    }
}

impl Collectives for Communicator {
    fn rank(&self) -> usize {
        delegate!(self, c => c.rank())
    }

    fn size(&self) -> usize {
        delegate!(self, c => c.size())
    }

    fn ledger(&self) -> &CostLedger {
        delegate!(self, c => c.ledger())
    }

    fn barrier(&self) {
        delegate!(self, c => c.barrier())
    }

    fn all_gather(&self, v: &[f64]) -> Vec<f64> {
        delegate!(self, c => c.all_gather(v))
    }

    fn all_gather_v(&self, v: &[f64]) -> Vec<Vec<f64>> {
        delegate!(self, c => c.all_gather_v(v))
    }

    fn all_reduce_sum(&self, v: &[f64]) -> Vec<f64> {
        delegate!(self, c => c.all_reduce_sum(v))
    }

    fn reduce_scatter_sum(&self, v: &[f64], counts: &[usize]) -> Vec<f64> {
        delegate!(self, c => c.reduce_scatter_sum(v, counts))
    }

    fn broadcast(&self, root: usize, v: &[f64]) -> Vec<f64> {
        delegate!(self, c => c.broadcast(root, v))
    }

    fn gather(&self, root: usize, v: &[f64]) -> Vec<Vec<f64>> {
        delegate!(self, c => c.gather(root, v))
    }

    fn scatter(&self, root: usize, chunks: Vec<Vec<f64>>) -> Vec<f64> {
        delegate!(self, c => c.scatter(root, chunks))
    }

    fn sendrecv_round(&self, msg: Option<(usize, Vec<f64>)>) -> Option<Vec<f64>> {
        delegate!(self, c => c.sendrecv_round(msg))
    }

    fn all_to_all(&self, chunks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        delegate!(self, c => c.all_to_all(chunks))
    }

    fn split(&self, color: i64, key: i64) -> Communicator {
        let inner = match &self.inner {
            Inner::Rendezvous(c) => Inner::Rendezvous(c.split(color, key)),
            Inner::P2p(c) => Inner::P2p(c.split(color, key)),
        };
        Communicator { inner }
    }
}

/// Builder for a world of [`Communicator`]s; owns the backend choice.
///
/// ```
/// use pp_comm::{Backend, Collectives, CommWorld};
/// let comms = CommWorld::new(2).backend(Backend::P2p).build();
/// assert_eq!(comms.len(), 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CommWorld {
    size: usize,
    backend: Backend,
}

impl CommWorld {
    /// Start building a world of `size` ranks on the default backend.
    pub fn new(size: usize) -> Self {
        CommWorld {
            size,
            backend: Backend::default(),
        }
    }

    /// Choose the collective backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Build the world communicators, in rank order; each must be moved to
    /// its own thread.
    pub fn build(self) -> Vec<Communicator> {
        match self.backend {
            Backend::Rendezvous => Rendezvous::world(self.size)
                .into_iter()
                .map(|c| Communicator {
                    inner: Inner::Rendezvous(c),
                })
                .collect(),
            Backend::P2p => P2p::world(self.size)
                .into_iter()
                .map(|c| Communicator {
                    inner: Inner::P2p(c),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_ranks_on<R: Send + 'static>(
        backend: Backend,
        size: usize,
        f: impl Fn(Communicator) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let comms = CommWorld::new(size).backend(backend).build();
        let f = Arc::new(f);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    /// Run the same rank program on both backends; semantics tests below
    /// must hold identically for each.
    fn run_ranks<R: Send + 'static>(
        size: usize,
        f: impl Fn(Communicator) -> R + Send + Sync + Clone + 'static,
    ) -> Vec<Vec<R>> {
        Backend::ALL
            .iter()
            .map(|&b| run_ranks_on(b, size, f.clone()))
            .collect()
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("rendezvous".parse::<Backend>(), Ok(Backend::Rendezvous));
        assert_eq!("p2p".parse::<Backend>(), Ok(Backend::P2p));
        assert_eq!(Backend::P2p.to_string(), "p2p");
        let err = "mpi".parse::<Backend>().unwrap_err();
        assert!(err.contains("rendezvous|p2p"), "got: {err}");
    }

    #[test]
    fn deprecated_world_shim_builds_rendezvous() {
        #[allow(deprecated)]
        let comms = Communicator::world(2);
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0].backend(), Backend::Rendezvous);
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        for out in run_ranks(4, |c| {
            let v = vec![c.rank() as f64; 2];
            c.all_gather(&v)
        }) {
            for o in out {
                assert_eq!(o, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
            }
        }
    }

    #[test]
    fn all_reduce_sums() {
        for out in run_ranks(3, |c| c.all_reduce_sum(&[1.0, c.rank() as f64])) {
            for o in out {
                assert_eq!(o, vec![3.0, 3.0]);
            }
        }
    }

    #[test]
    fn reduce_scatter_segments() {
        for out in run_ranks(2, |c| {
            let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
            let seg = c.reduce_scatter_sum(&v, &[2, 3]);
            (c.rank(), seg)
        }) {
            for (rank, seg) in out {
                if rank == 0 {
                    assert_eq!(seg, vec![2.0, 4.0]);
                } else {
                    assert_eq!(seg, vec![6.0, 8.0, 10.0]);
                }
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        for out in run_ranks(4, |c| {
            let v = if c.rank() == 2 {
                vec![7.0, 8.0]
            } else {
                vec![]
            };
            c.broadcast(2, &v)
        }) {
            for o in out {
                assert_eq!(o, vec![7.0, 8.0]);
            }
        }
    }

    #[test]
    fn gather_collects_on_root_only() {
        for out in run_ranks(3, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1];
            (c.rank(), c.gather(1, &mine))
        }) {
            for (rank, got) in out {
                if rank == 1 {
                    assert_eq!(got.len(), 3);
                    assert_eq!(got[0], vec![0.0]);
                    assert_eq!(got[2], vec![2.0, 2.0, 2.0]);
                } else {
                    assert!(got.is_empty());
                }
            }
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        for out in run_ranks(3, |c| {
            let chunks = if c.rank() == 0 {
                vec![vec![10.0], vec![20.0, 21.0], vec![30.0]]
            } else {
                Vec::new()
            };
            (c.rank(), c.scatter(0, chunks))
        }) {
            for (rank, got) in out {
                match rank {
                    0 => assert_eq!(got, vec![10.0]),
                    1 => assert_eq!(got, vec![20.0, 21.0]),
                    _ => assert_eq!(got, vec![30.0]),
                }
            }
        }
    }

    #[test]
    fn sendrecv_ring_shift() {
        // Every rank sends to its right neighbour; everyone receives from
        // the left.
        for out in run_ranks(4, |c| {
            let dest = (c.rank() + 1) % 4;
            let got = c.sendrecv_round(Some((dest, vec![c.rank() as f64])));
            (c.rank(), got)
        }) {
            for (rank, got) in out {
                let expect = ((rank + 3) % 4) as f64;
                assert_eq!(got, Some(vec![expect]));
            }
        }
    }

    #[test]
    fn sendrecv_with_silent_ranks() {
        for out in run_ranks(3, |c| {
            let msg = if c.rank() == 0 {
                Some((2, vec![5.0]))
            } else {
                None
            };
            (c.rank(), c.sendrecv_round(msg))
        }) {
            for (rank, got) in out {
                if rank == 2 {
                    assert_eq!(got, Some(vec![5.0]));
                } else {
                    assert_eq!(got, None);
                }
            }
        }
    }

    #[test]
    fn all_to_all_routes_chunks() {
        for out in run_ranks(3, |c| {
            let me = c.rank() as f64;
            // Send [me, dest] to each destination.
            let chunks: Vec<Vec<f64>> = (0..3).map(|d| vec![me, d as f64]).collect();
            (c.rank(), c.all_to_all(chunks))
        }) {
            for (rank, got) in out {
                for (src, chunk) in got.iter().enumerate() {
                    assert_eq!(chunk, &vec![src as f64, rank as f64]);
                }
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock() {
        for out in run_ranks(4, |c| {
            let mut acc = 0.0;
            for i in 0..50 {
                let s = c.all_reduce_sum(&[i as f64]);
                acc += s[0];
            }
            acc
        }) {
            let expect: f64 = (0..50).map(|i| (i * 4) as f64).sum();
            for o in out {
                assert_eq!(o, expect);
            }
        }
    }

    #[test]
    fn split_forms_correct_groups() {
        for out in run_ranks(6, |c| {
            // Two colors: even/odd world ranks.
            let color = (c.rank() % 2) as i64;
            let sub = c.split(color, c.rank() as i64);
            let got = sub.all_gather(&[c.rank() as f64]);
            (c.rank(), sub.rank(), sub.size(), got)
        }) {
            for (wrank, srank, ssize, got) in out {
                assert_eq!(ssize, 3);
                assert_eq!(srank, wrank / 2);
                let expect: Vec<f64> = (0..3).map(|i| (2 * i + wrank % 2) as f64).collect();
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn nested_split_and_mixed_collectives() {
        for out in run_ranks(8, |c| {
            let sub = c.split((c.rank() / 4) as i64, 0);
            let subsub = sub.split((sub.rank() % 2) as i64, 0);
            let x = subsub.all_reduce_sum(&[1.0]);
            c.barrier();
            x[0]
        }) {
            for o in out {
                assert_eq!(o, 2.0);
            }
        }
    }

    #[test]
    fn collectives_charge_ledger_identically_on_both_backends() {
        for out in run_ranks(4, |c| {
            let _ = c.all_gather(&[1.0, 2.0]);
            c.ledger().snapshot()
        }) {
            for s in out {
                assert_eq!(s.messages, 2); // log2(4)
                assert_eq!(s.comm_words, 8); // total gathered words
            }
        }
    }

    #[test]
    fn single_rank_charges_no_bandwidth() {
        for out in run_ranks(1, |c| {
            let g = c.all_gather(&[5.0]);
            assert_eq!(g, vec![5.0]);
            c.ledger().snapshot()
        }) {
            assert_eq!(out[0].comm_words, 0);
        }
    }

    #[test]
    fn transport_stats_only_on_p2p() {
        let ren = run_ranks_on(Backend::Rendezvous, 2, |c| {
            let _ = c.all_reduce_sum(&[1.0]);
            c.transport_stats()
        });
        assert!(ren.iter().all(|s| s.is_none()));
        let p2p = run_ranks_on(Backend::P2p, 2, |c| {
            let _ = c.all_reduce_sum(&[1.0]);
            c.transport_stats()
        });
        for s in p2p {
            let s = s.expect("p2p must report wire counters");
            assert!(s.msgs_sent > 0, "all_reduce must touch the wire");
            assert_eq!(s.msgs_sent, s.msgs_recv, "symmetric schedule");
        }
    }
}
