//! MPI-style communicators over shared-memory rendezvous.
//!
//! Each logical rank runs on its own OS thread with private data; ranks
//! interact *only* through the collective operations here, so algorithms
//! written against [`Communicator`] have the same structure as their MPI
//! counterparts. Every collective charges the rank's [`CostLedger`]
//! following the collective costs of the paper's §II-E:
//!
//! * All-Gather:      `log P · α + n·δ(P) · β`
//! * Reduce-Scatter:  `log P · α + n·δ(P) · β` (plus `n` flops for the sum)
//! * All-Reduce:      `2 log P · α + 2n·δ(P) · β`
//! * Broadcast:       `log P · α + n·δ(P) · β`
//! * All-to-All:      `log P · α + n·δ(P) · β`
//! * Barrier:         `log P · α`

use crate::cost::CostLedger;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

type AnyBox = Box<dyn Any + Send + Sync>;

/// Phase of the rendezvous slot: ranks deposit, then all take the combined
/// result, then the slot resets.
enum Phase {
    Collecting,
    Distributing,
}

struct Slot {
    phase: Phase,
    arrived: usize,
    taken: usize,
    deposits: Vec<Option<AnyBox>>,
    all: Option<Arc<Vec<AnyBox>>>,
}

/// Shared state of one communicator (one per process group).
struct GroupState {
    size: usize,
    slot: Mutex<Slot>,
    cv: Condvar,
    /// Registry for `split`: maps (split sequence number, color) to the
    /// freshly created child group, so all members agree on one state.
    splits: Mutex<HashMap<(u64, i64), Arc<GroupState>>>,
    split_seq: Mutex<u64>,
}

impl GroupState {
    fn new(size: usize) -> Arc<Self> {
        Arc::new(GroupState {
            size,
            slot: Mutex::new(Slot {
                phase: Phase::Collecting,
                arrived: 0,
                taken: 0,
                deposits: (0..size).map(|_| None).collect(),
                all: None,
            }),
            cv: Condvar::new(),
            splits: Mutex::new(HashMap::new()),
            split_seq: Mutex::new(0),
        })
    }

    /// The core primitive: every member deposits a value and receives a
    /// shared view of all deposits, indexed by group rank.
    fn exchange(&self, rank: usize, value: AnyBox) -> Arc<Vec<AnyBox>> {
        let mut g = self.slot.lock();
        // Wait out the draining phase of the previous round.
        while !matches!(g.phase, Phase::Collecting) {
            self.cv.wait(&mut g);
        }
        debug_assert!(g.deposits[rank].is_none(), "rank {rank} double deposit");
        g.deposits[rank] = Some(value);
        g.arrived += 1;
        if g.arrived == self.size {
            let all: Vec<AnyBox> = g.deposits.iter_mut().map(|d| d.take().unwrap()).collect();
            g.all = Some(Arc::new(all));
            g.phase = Phase::Distributing;
            g.taken = 0;
            self.cv.notify_all();
        } else {
            while matches!(g.phase, Phase::Collecting) {
                self.cv.wait(&mut g);
            }
        }
        let res = g.all.clone().expect("distribution phase must hold result");
        g.taken += 1;
        if g.taken == self.size {
            g.all = None;
            g.arrived = 0;
            g.phase = Phase::Collecting;
            self.cv.notify_all();
        }
        res
    }
}

/// A process group: `rank` of `size` peers that can run collectives.
///
/// Clones and sub-communicators created by [`Communicator::split`] share the
/// rank's cost ledger.
#[derive(Clone)]
pub struct Communicator {
    state: Arc<GroupState>,
    rank: usize,
    size: usize,
    ledger: CostLedger,
}

impl Communicator {
    /// Create the world communicators for `size` ranks. Returned in rank
    /// order; each must be moved to its own thread.
    pub fn world(size: usize) -> Vec<Communicator> {
        assert!(size > 0);
        let state = GroupState::new(size);
        (0..size)
            .map(|rank| Communicator {
                state: state.clone(),
                rank,
                size,
                ledger: CostLedger::new(),
            })
            .collect()
    }

    /// This rank's index within the group.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost ledger charged by this communicator's collectives.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    #[inline]
    fn log_p(&self) -> u64 {
        (self.size.max(2) as f64).log2().ceil() as u64
    }

    #[inline]
    fn delta(&self) -> u64 {
        u64::from(self.size > 1)
    }

    /// Synchronize all ranks in the group.
    pub fn barrier(&self) {
        self.ledger.charge_messages(self.log_p());
        let _ = self.state.exchange(self.rank, Box::new(()));
    }

    /// Gather equal-length contributions from every rank; the result is the
    /// concatenation in rank order, stored on every rank.
    pub fn all_gather(&self, v: &[f64]) -> Vec<f64> {
        let res = self.gather_internal(v);
        let total: usize = res.iter().map(|r| slice_of(r).len()).sum();
        self.ledger.charge_messages(self.log_p());
        self.ledger.charge_comm_words(self.delta() * total as u64);
        let mut out = Vec::with_capacity(total);
        for r in res.iter() {
            out.extend_from_slice(slice_of(r));
        }
        out
    }

    /// Variable-length all-gather; returns per-rank vectors.
    pub fn all_gather_v(&self, v: &[f64]) -> Vec<Vec<f64>> {
        let res = self.gather_internal(v);
        let total: usize = res.iter().map(|r| slice_of(r).len()).sum();
        self.ledger.charge_messages(self.log_p());
        self.ledger.charge_comm_words(self.delta() * total as u64);
        res.iter().map(|r| slice_of(r).to_vec()).collect()
    }

    /// Element-wise sum of equal-length vectors, replicated on all ranks.
    pub fn all_reduce_sum(&self, v: &[f64]) -> Vec<f64> {
        let res = self.gather_internal(v);
        self.ledger.charge_messages(2 * self.log_p());
        self.ledger
            .charge_comm_words(2 * self.delta() * v.len() as u64);
        self.ledger.charge_flops(self.delta() * v.len() as u64);
        let mut out = vec![0.0f64; v.len()];
        for r in res.iter() {
            let s = slice_of(r);
            assert_eq!(s.len(), out.len(), "all_reduce length mismatch");
            for (o, x) in out.iter_mut().zip(s.iter()) {
                *o += x;
            }
        }
        out
    }

    /// Sum equal-length vectors and scatter the result: rank `i` receives
    /// the segment `[offsets[i], offsets[i] + counts[i])` of the sum.
    /// `counts` must sum to the vector length.
    pub fn reduce_scatter_sum(&self, v: &[f64], counts: &[usize]) -> Vec<f64> {
        assert_eq!(counts.len(), self.size, "one count per rank required");
        let total: usize = counts.iter().sum();
        assert_eq!(total, v.len(), "counts must cover the whole vector");
        let res = self.gather_internal(v);
        self.ledger.charge_messages(self.log_p());
        self.ledger.charge_comm_words(self.delta() * v.len() as u64);
        self.ledger.charge_flops(self.delta() * v.len() as u64);
        let offset: usize = counts[..self.rank].iter().sum();
        let mine = counts[self.rank];
        let mut out = vec![0.0f64; mine];
        for r in res.iter() {
            let s = slice_of(r);
            for (o, x) in out.iter_mut().zip(s[offset..offset + mine].iter()) {
                *o += x;
            }
        }
        out
    }

    /// Broadcast `v` from `root` to every rank.
    pub fn broadcast(&self, root: usize, v: &[f64]) -> Vec<f64> {
        let payload: Vec<f64> = if self.rank == root {
            v.to_vec()
        } else {
            Vec::new()
        };
        let res = self.state.exchange(self.rank, Box::new(payload));
        let data = slice_of(&res[root]).to_vec();
        self.ledger.charge_messages(self.log_p());
        self.ledger
            .charge_comm_words(self.delta() * data.len() as u64);
        data
    }

    /// Gather variable-length contributions onto `root` only (others get
    /// an empty vec). Cost charged: `log P · α + n·δ(P) · β`.
    pub fn gather(&self, root: usize, v: &[f64]) -> Vec<Vec<f64>> {
        let res = self.gather_internal(v);
        let total: usize = res.iter().map(|r| slice_of(r).len()).sum();
        self.ledger.charge_messages(self.log_p());
        self.ledger.charge_comm_words(self.delta() * total as u64);
        if self.rank == root {
            res.iter().map(|r| slice_of(r).to_vec()).collect()
        } else {
            Vec::new()
        }
    }

    /// Scatter: `root` provides one chunk per rank; every rank receives its
    /// chunk. Non-root ranks pass anything (ignored).
    pub fn scatter(&self, root: usize, chunks: Vec<Vec<f64>>) -> Vec<f64> {
        if self.rank == root {
            assert_eq!(chunks.len(), self.size, "one chunk per rank required");
        }
        let payload: Vec<Vec<f64>> = if self.rank == root {
            chunks
        } else {
            Vec::new()
        };
        let res = self.state.exchange(self.rank, Box::new(payload));
        let all: &Vec<Vec<f64>> = res[root]
            .downcast_ref()
            .expect("scatter deposit type mismatch");
        let mine = all[self.rank].clone();
        self.ledger.charge_messages(self.log_p());
        self.ledger
            .charge_comm_words(self.delta() * mine.len() as u64);
        mine
    }

    /// Point-to-point exchange round: every rank offers at most one message
    /// `(dest, payload)`; returns the message addressed to this rank, if
    /// any. (A BSP-superstep formulation of send/recv: all ranks of the
    /// group must call this together.)
    pub fn sendrecv_round(&self, msg: Option<(usize, Vec<f64>)>) -> Option<Vec<f64>> {
        if let Some((dest, _)) = &msg {
            assert!(*dest < self.size, "destination out of range");
        }
        let sent_words = msg.as_ref().map_or(0, |(_, p)| p.len());
        let res = self.state.exchange(self.rank, Box::new(msg));
        let mut incoming: Option<Vec<f64>> = None;
        for r in res.iter() {
            let m: &Option<(usize, Vec<f64>)> =
                r.downcast_ref().expect("sendrecv deposit type mismatch");
            if let Some((dest, payload)) = m {
                if *dest == self.rank {
                    assert!(
                        incoming.is_none(),
                        "multiple messages addressed to rank {} in one round",
                        self.rank
                    );
                    incoming = Some(payload.clone());
                }
            }
        }
        let recv_words = incoming.as_ref().map_or(0, |p| p.len());
        self.ledger
            .charge_messages(u64::from(sent_words + recv_words > 0));
        self.ledger
            .charge_comm_words(self.delta() * (sent_words + recv_words) as u64);
        incoming
    }

    /// Personalized all-to-all: `chunks[j]` is sent to rank `j`; the result
    /// concatenates the chunks every rank addressed to us, in rank order.
    pub fn all_to_all(&self, chunks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        assert_eq!(chunks.len(), self.size, "one chunk per destination rank");
        let sent: usize = chunks.iter().map(|c| c.len()).sum();
        let res = self.state.exchange(self.rank, Box::new(chunks));
        let mut out = Vec::with_capacity(self.size);
        let mut received = 0usize;
        for r in res.iter() {
            let all: &Vec<Vec<f64>> = r.downcast_ref().expect("all_to_all deposit type mismatch");
            received += all[self.rank].len();
            out.push(all[self.rank].clone());
        }
        self.ledger.charge_messages(self.log_p());
        self.ledger
            .charge_comm_words(self.delta() * (sent.max(received)) as u64);
        out
    }

    /// Split into sub-communicators by `color`; ranks sharing a color form a
    /// group ordered by `(key, parent rank)`.
    pub fn split(&self, color: i64, key: i64) -> Communicator {
        // Round 1: agree on a split sequence number and learn all colors.
        let res = self
            .state
            .exchange(self.rank, Box::new((color, key, self.rank)));
        let mut triples: Vec<(i64, i64, usize)> = res
            .iter()
            .map(|r| *r.downcast_ref::<(i64, i64, usize)>().unwrap())
            .collect();
        triples.sort_by_key(|&(c, k, r)| (c, k, r));
        let members: Vec<usize> = triples
            .iter()
            .filter(|&&(c, _, _)| c == color)
            .map(|&(_, _, r)| r)
            .collect();
        let my_new_rank = members.iter().position(|&r| r == self.rank).unwrap();
        let group_size = members.len();

        // Round 2: the lowest-ranked member of each color creates the child
        // state; everyone retrieves it from the parent's registry keyed by a
        // sequence number all ranks advance together.
        let seq = {
            let s = self.state.split_seq.lock();
            // All ranks read the same value; only advance after the barrier
            // below, so do it on first access per round via arrived trick:
            // simplest correct scheme: advance in lockstep after use.
            *s
        };
        if members[0] == self.rank {
            let child = GroupState::new(group_size);
            self.state.splits.lock().insert((seq, color), child);
        }
        // Make the creation visible to all members before lookup.
        let _ = self.state.exchange(self.rank, Box::new(()));
        let child = self
            .state
            .splits
            .lock()
            .get(&(seq, color))
            .cloned()
            .expect("split registry entry must exist");
        // Advance the sequence number exactly once (rank 0 of the parent),
        // then synchronize so no rank starts the next split early.
        if self.rank == 0 {
            *self.state.split_seq.lock() += 1;
        }
        let _ = self.state.exchange(self.rank, Box::new(()));
        // Garbage-collect registry entries from this round.
        if members[0] == self.rank {
            self.state.splits.lock().remove(&(seq, color));
        }

        self.ledger.charge_messages(self.log_p());
        Communicator {
            state: child,
            rank: my_new_rank,
            size: group_size,
            ledger: self.ledger.clone(),
        }
    }

    fn gather_internal(&self, v: &[f64]) -> Arc<Vec<AnyBox>> {
        self.state.exchange(self.rank, Box::new(v.to_vec()))
    }
}

fn slice_of(b: &AnyBox) -> &[f64] {
    b.downcast_ref::<Vec<f64>>()
        .expect("collective deposit type mismatch")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_ranks<R: Send + 'static>(
        size: usize,
        f: impl Fn(Communicator) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let comms = Communicator::world(size);
        let f = Arc::new(f);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let out = run_ranks(4, |c| {
            let v = vec![c.rank() as f64; 2];
            c.all_gather(&v)
        });
        for o in out {
            assert_eq!(o, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        }
    }

    #[test]
    fn all_reduce_sums() {
        let out = run_ranks(3, |c| c.all_reduce_sum(&[1.0, c.rank() as f64]));
        for o in out {
            assert_eq!(o, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn reduce_scatter_segments() {
        let out = run_ranks(2, |c| {
            let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
            let seg = c.reduce_scatter_sum(&v, &[2, 3]);
            (c.rank(), seg)
        });
        for (rank, seg) in out {
            if rank == 0 {
                assert_eq!(seg, vec![2.0, 4.0]);
            } else {
                assert_eq!(seg, vec![6.0, 8.0, 10.0]);
            }
        }
    }

    #[test]
    fn broadcast_from_root() {
        let out = run_ranks(4, |c| {
            let v = if c.rank() == 2 {
                vec![7.0, 8.0]
            } else {
                vec![]
            };
            c.broadcast(2, &v)
        });
        for o in out {
            assert_eq!(o, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn gather_collects_on_root_only() {
        let out = run_ranks(3, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1];
            (c.rank(), c.gather(1, &mine))
        });
        for (rank, got) in out {
            if rank == 1 {
                assert_eq!(got.len(), 3);
                assert_eq!(got[0], vec![0.0]);
                assert_eq!(got[2], vec![2.0, 2.0, 2.0]);
            } else {
                assert!(got.is_empty());
            }
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let out = run_ranks(3, |c| {
            let chunks = if c.rank() == 0 {
                vec![vec![10.0], vec![20.0, 21.0], vec![30.0]]
            } else {
                Vec::new()
            };
            (c.rank(), c.scatter(0, chunks))
        });
        for (rank, got) in out {
            match rank {
                0 => assert_eq!(got, vec![10.0]),
                1 => assert_eq!(got, vec![20.0, 21.0]),
                _ => assert_eq!(got, vec![30.0]),
            }
        }
    }

    #[test]
    fn sendrecv_ring_shift() {
        // Every rank sends to its right neighbour; everyone receives from
        // the left.
        let out = run_ranks(4, |c| {
            let dest = (c.rank() + 1) % 4;
            let got = c.sendrecv_round(Some((dest, vec![c.rank() as f64])));
            (c.rank(), got)
        });
        for (rank, got) in out {
            let expect = ((rank + 3) % 4) as f64;
            assert_eq!(got, Some(vec![expect]));
        }
    }

    #[test]
    fn sendrecv_with_silent_ranks() {
        let out = run_ranks(3, |c| {
            let msg = if c.rank() == 0 {
                Some((2, vec![5.0]))
            } else {
                None
            };
            (c.rank(), c.sendrecv_round(msg))
        });
        for (rank, got) in out {
            if rank == 2 {
                assert_eq!(got, Some(vec![5.0]));
            } else {
                assert_eq!(got, None);
            }
        }
    }

    #[test]
    fn all_to_all_routes_chunks() {
        let out = run_ranks(3, |c| {
            let me = c.rank() as f64;
            // Send [me, dest] to each destination.
            let chunks: Vec<Vec<f64>> = (0..3).map(|d| vec![me, d as f64]).collect();
            (c.rank(), c.all_to_all(chunks))
        });
        for (rank, got) in out {
            for (src, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![src as f64, rank as f64]);
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock() {
        let out = run_ranks(4, |c| {
            let mut acc = 0.0;
            for i in 0..50 {
                let s = c.all_reduce_sum(&[i as f64]);
                acc += s[0];
            }
            acc
        });
        let expect: f64 = (0..50).map(|i| (i * 4) as f64).sum();
        for o in out {
            assert_eq!(o, expect);
        }
    }

    #[test]
    fn split_forms_correct_groups() {
        let out = run_ranks(6, |c| {
            // Two colors: even/odd world ranks.
            let color = (c.rank() % 2) as i64;
            let sub = c.split(color, c.rank() as i64);
            let got = sub.all_gather(&[c.rank() as f64]);
            (c.rank(), sub.rank(), sub.size(), got)
        });
        for (wrank, srank, ssize, got) in out {
            assert_eq!(ssize, 3);
            assert_eq!(srank, wrank / 2);
            let expect: Vec<f64> = (0..3).map(|i| (2 * i + wrank % 2) as f64).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn nested_split_and_mixed_collectives() {
        let out = run_ranks(8, |c| {
            let sub = c.split((c.rank() / 4) as i64, 0);
            let subsub = sub.split((sub.rank() % 2) as i64, 0);
            let x = subsub.all_reduce_sum(&[1.0]);
            c.barrier();
            x[0]
        });
        for o in out {
            assert_eq!(o, 2.0);
        }
    }

    #[test]
    fn collectives_charge_ledger() {
        let out = run_ranks(4, |c| {
            let _ = c.all_gather(&[1.0, 2.0]);
            c.ledger().snapshot()
        });
        for s in out {
            assert_eq!(s.messages, 2); // log2(4)
            assert_eq!(s.comm_words, 8); // total gathered words
        }
    }

    #[test]
    fn single_rank_charges_no_bandwidth() {
        let out = run_ranks(1, |c| {
            let g = c.all_gather(&[5.0]);
            assert_eq!(g, vec![5.0]);
            c.ledger().snapshot()
        });
        assert_eq!(out[0].comm_words, 0);
    }
}
