//! The simulated distributed runtime: one OS thread per logical rank.
//!
//! `Runtime::new(P).run(|ctx| ...)` plays the role of `mpirun -np P`: the
//! closure body is the per-rank program. Ranks own their data privately and
//! coordinate only through `ctx.comm` collectives, so algorithms keep the
//! exact structure of their MPI implementations (Algorithms 3 and 4 of the
//! paper).

use crate::comm::Communicator;
use crate::cost::{CostCounters, CostReport};
use std::sync::Arc;
use std::thread;

/// Handle for launching SPMD rank programs.
pub struct Runtime {
    size: usize,
}

/// Per-rank execution context handed to the rank program.
pub struct RankCtx {
    /// World communicator for this rank.
    pub comm: Communicator,
}

impl RankCtx {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }
}

/// Result of a run: per-rank return values plus the aggregated cost report.
pub struct RunOutput<R> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank model-cost counters, indexed by rank.
    pub costs: Vec<CostCounters>,
    /// Critical-path / total aggregation of `costs`.
    pub report: CostReport,
}

impl Runtime {
    /// A runtime with `size` logical ranks.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "need at least one rank");
        Runtime { size }
    }

    /// Number of logical ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run the SPMD program `f` on every rank and collect results.
    ///
    /// Rank threads are real OS threads; nesting rayon parallelism inside a
    /// rank is allowed (the global rayon pool is shared between ranks, just
    /// as OpenMP threads share cores in the paper's runs).
    pub fn run<R, F>(&self, f: F) -> RunOutput<R>
    where
        R: Send + 'static,
        F: Fn(&mut RankCtx) -> R + Send + Sync + 'static,
    {
        let comms = Communicator::world(self.size);
        let f = Arc::new(f);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = Arc::clone(&f);
                thread::Builder::new()
                    .name(format!("rank-{}", comm.rank()))
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || {
                        let ledger = comm.ledger().clone();
                        let mut ctx = RankCtx { comm };
                        let out = f(&mut ctx);
                        (out, ledger.snapshot())
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        let mut results = Vec::with_capacity(self.size);
        let mut costs = Vec::with_capacity(self.size);
        for h in handles {
            let (r, c) = h.join().expect("rank thread panicked");
            results.push(r);
            costs.push(c);
        }
        let report = CostReport::from_ranks(&costs);
        RunOutput {
            results,
            costs,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_hello_world() {
        let rt = Runtime::new(4);
        let out = rt.run(|ctx| {
            let sum = ctx.comm.all_reduce_sum(&[ctx.rank() as f64]);
            sum[0]
        });
        assert_eq!(out.results, vec![6.0; 4]);
    }

    #[test]
    fn costs_are_collected_per_rank() {
        let rt = Runtime::new(2);
        let out = rt.run(|ctx| {
            ctx.comm.ledger().charge_flops((ctx.rank() + 1) as u64 * 10);
            ctx.comm.barrier();
        });
        assert_eq!(out.costs[0].flops, 10);
        assert_eq!(out.costs[1].flops, 20);
        assert_eq!(out.report.critical.flops, 20);
        assert_eq!(out.report.total.flops, 30);
    }

    #[test]
    fn results_are_rank_ordered() {
        let rt = Runtime::new(6);
        let out = rt.run(|ctx| ctx.rank());
        assert_eq!(out.results, (0..6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates() {
        // Failure injection: a crashing rank must surface as a panic on the
        // launcher, not a hang — ranks that were not waiting on the felled
        // rank run to completion first.
        let rt = Runtime::new(3);
        let _ = rt.run(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            ctx.rank()
        });
    }

    #[test]
    fn heavy_collective_traffic_is_stable() {
        // Stress the rendezvous slots with many mixed collectives.
        let rt = Runtime::new(8);
        let out = rt.run(|ctx| {
            let mut acc = 0.0f64;
            for i in 0..40 {
                let g = ctx.comm.all_gather(&[ctx.rank() as f64 + i as f64]);
                acc += g.iter().sum::<f64>();
                let s = ctx.comm.reduce_scatter_sum(&[1.0; 8], &[1; 8]);
                acc += s[0];
                ctx.comm.barrier();
            }
            acc
        });
        for r in out.results.windows(2) {
            assert_eq!(r[0], r[1]);
        }
    }
}
