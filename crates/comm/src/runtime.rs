//! The distributed runtime: one OS thread per logical rank.
//!
//! `Runtime::new(P).run(|ctx| ...)` plays the role of `mpirun -np P`: the
//! closure body is the per-rank program. Ranks own their data privately and
//! coordinate only through `ctx.comm` collectives, so algorithms keep the
//! exact structure of their MPI implementations (Algorithms 3 and 4 of the
//! paper). [`Runtime::with_backend`] selects the collective implementation
//! (rendezvous oracle or the p2p channel transport);
//! [`Runtime::from_env`] honors `PP_COMM_BACKEND`.
//!
//! If a rank program panics, the runtime poisons the whole world before
//! re-raising, so peers blocked in collectives (on either backend) panic
//! with "collective aborted" instead of waiting forever on the dead rank —
//! the launcher then reports a rank-thread panic rather than hanging.

use crate::comm::{Backend, CommWorld, Communicator};
use crate::cost::{CostCounters, CostReport};
use crate::p2p::TransportCounters;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

/// Handle for launching SPMD rank programs.
pub struct Runtime {
    size: usize,
    backend: Backend,
}

/// Per-rank execution context handed to the rank program.
pub struct RankCtx {
    /// World communicator for this rank.
    pub comm: Communicator,
}

impl RankCtx {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }
}

/// Result of a run: per-rank return values plus the aggregated cost report.
pub struct RunOutput<R> {
    /// Per-rank results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank model-cost counters, indexed by rank.
    pub costs: Vec<CostCounters>,
    /// Critical-path / total aggregation of `costs`.
    pub report: CostReport,
    /// Per-rank measured wire traffic, indexed by rank; `None` on the
    /// rendezvous backend (which has no wire).
    pub transport: Option<Vec<TransportCounters>>,
}

impl Runtime {
    /// A runtime with `size` logical ranks on the default (rendezvous)
    /// backend.
    pub fn new(size: usize) -> Self {
        Self::with_backend(size, Backend::default())
    }

    /// A runtime with `size` logical ranks on an explicit backend.
    pub fn with_backend(size: usize, backend: Backend) -> Self {
        assert!(size > 0, "need at least one rank");
        Runtime { size, backend }
    }

    /// A runtime with `size` ranks on the backend named by the
    /// `PP_COMM_BACKEND` environment variable (default: rendezvous).
    pub fn from_env(size: usize) -> Self {
        Self::with_backend(size, Backend::from_env())
    }

    /// Number of logical ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The collective backend this runtime launches worlds on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Run the SPMD program `f` on every rank and collect results.
    ///
    /// Rank threads are real OS threads; nesting rayon parallelism inside a
    /// rank is allowed (the global rayon pool is shared between ranks, just
    /// as OpenMP threads share cores in the paper's runs).
    pub fn run<R, F>(&self, f: F) -> RunOutput<R>
    where
        R: Send + 'static,
        F: Fn(&mut RankCtx) -> R + Send + Sync + 'static,
    {
        let comms = CommWorld::new(self.size).backend(self.backend).build();
        let is_p2p = self.backend == Backend::P2p;
        let f = Arc::new(f);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = Arc::clone(&f);
                thread::Builder::new()
                    .name(format!("rank-{}", comm.rank()))
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || {
                        let ledger = comm.ledger().clone();
                        let poison = comm.clone();
                        let mut ctx = RankCtx { comm };
                        match catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
                            Ok(out) => {
                                let wire = ctx.comm.transport_stats();
                                (out, ledger.snapshot(), wire)
                            }
                            Err(cause) => {
                                // Wake peers blocked on this rank before
                                // re-raising, so `join` below sees a panic
                                // on every affected rank instead of a hang.
                                poison.abort();
                                resume_unwind(cause);
                            }
                        }
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        let mut results = Vec::with_capacity(self.size);
        let mut costs = Vec::with_capacity(self.size);
        let mut transport = Vec::with_capacity(self.size);
        for h in handles {
            let (r, c, w) = h.join().expect("rank thread panicked");
            results.push(r);
            costs.push(c);
            transport.extend(w);
        }
        let report = CostReport::from_ranks(&costs);
        RunOutput {
            results,
            costs,
            report,
            transport: is_p2p.then_some(transport),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Collectives;

    #[test]
    fn spmd_hello_world() {
        let rt = Runtime::new(4);
        let out = rt.run(|ctx| {
            let sum = ctx.comm.all_reduce_sum(&[ctx.rank() as f64]);
            sum[0]
        });
        assert_eq!(out.results, vec![6.0; 4]);
        assert!(out.transport.is_none(), "rendezvous has no wire");
    }

    #[test]
    fn costs_are_collected_per_rank() {
        let rt = Runtime::new(2);
        let out = rt.run(|ctx| {
            ctx.comm.ledger().charge_flops((ctx.rank() + 1) as u64 * 10);
            ctx.comm.barrier();
        });
        assert_eq!(out.costs[0].flops, 10);
        assert_eq!(out.costs[1].flops, 20);
        assert_eq!(out.report.critical.flops, 20);
        assert_eq!(out.report.total.flops, 30);
    }

    #[test]
    fn results_are_rank_ordered() {
        let rt = Runtime::new(6);
        let out = rt.run(|ctx| ctx.rank());
        assert_eq!(out.results, (0..6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates() {
        // Failure injection: a crashing rank must surface as a panic on the
        // launcher, not a hang — ranks that were not waiting on the felled
        // rank run to completion first.
        let rt = Runtime::new(3);
        let _ = rt.run(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            ctx.rank()
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates_on_p2p() {
        // Same injection on the channel backend: peers blocked in the
        // all-reduce on the dead rank's channels are poisoned awake.
        let rt = Runtime::with_backend(3, Backend::P2p);
        let _ = rt.run(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            let s = ctx.comm.all_reduce_sum(&[1.0]);
            s[0]
        });
    }

    #[test]
    fn heavy_collective_traffic_is_stable() {
        // Stress both backends with many mixed collectives.
        for backend in Backend::ALL {
            let rt = Runtime::with_backend(8, backend);
            let out = rt.run(|ctx| {
                let mut acc = 0.0f64;
                for i in 0..40 {
                    let g = ctx.comm.all_gather(&[ctx.rank() as f64 + i as f64]);
                    acc += g.iter().sum::<f64>();
                    let s = ctx.comm.reduce_scatter_sum(&[1.0; 8], &[1; 8]);
                    acc += s[0];
                    ctx.comm.barrier();
                }
                acc
            });
            for r in out.results.windows(2) {
                assert_eq!(r[0], r[1]);
            }
        }
    }

    #[test]
    fn p2p_runs_report_wire_traffic() {
        let rt = Runtime::with_backend(4, Backend::P2p);
        let out = rt.run(|ctx| {
            let _ = ctx.comm.all_reduce_sum(&[1.0, 2.0]);
        });
        let wire = out.transport.expect("p2p must report transport counters");
        assert_eq!(wire.len(), 4);
        for w in wire {
            assert!(w.msgs_sent > 0);
            assert_eq!(w.words_sent, w.words_recv, "symmetric schedule");
        }
    }
}
