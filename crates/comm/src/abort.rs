//! Cooperative abort for rank worlds: when one rank dies, every blocked
//! collective on every sibling rank must wake up and panic instead of
//! waiting forever on a peer that will never arrive.
//!
//! Both backends share one [`Abort`] per world (sub-communicators created
//! by `split` inherit it), so a single poisoned flag reaches rendezvous
//! slots and point-to-point channels alike. Blocking primitives register a
//! *waker* — a closure that takes the primitive's lock and notifies its
//! condvars — and call [`Abort::check`] inside their wait loops; `set`
//! flips the flag and fires every waker, so a waiter either observes the
//! flag before blocking or is woken by the notification.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Waker = Box<dyn Fn() + Send + Sync>;

#[derive(Default)]
struct AbortInner {
    flag: AtomicBool,
    wakers: Mutex<Vec<Waker>>,
}

/// Shared poison flag for one rank world. Cloning shares the flag.
#[derive(Clone, Default)]
pub(crate) struct Abort {
    inner: Arc<AbortInner>,
}

impl Abort {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a waker fired when the world is poisoned. Wakers hold only
    /// `Weak` references back to their primitive, so worlds are freed when
    /// the last communicator drops. If the world is already poisoned the
    /// waker fires immediately.
    pub fn register(&self, waker: Waker) {
        if self.is_set() {
            waker();
        }
        self.inner.wakers.lock().push(waker);
    }

    /// Whether the world has been poisoned.
    pub fn is_set(&self) -> bool {
        self.inner.flag.load(Ordering::SeqCst)
    }

    /// Poison the world and wake every registered blocking primitive.
    /// Idempotent.
    pub fn set(&self) {
        if !self.inner.flag.swap(true, Ordering::SeqCst) {
            for w in self.inner.wakers.lock().iter() {
                w();
            }
        }
    }

    /// Panic if the world is poisoned; called from inside wait loops.
    pub fn check(&self) {
        if self.is_set() {
            panic!("collective aborted: a peer rank panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Condvar;
    use std::sync::Weak;

    #[test]
    fn set_is_idempotent_and_visible() {
        let a = Abort::new();
        assert!(!a.is_set());
        a.set();
        a.set();
        assert!(a.is_set());
    }

    #[test]
    #[should_panic(expected = "collective aborted")]
    fn check_panics_once_set() {
        let a = Abort::new();
        a.set();
        a.check();
    }

    #[test]
    fn wakers_fire_on_set_and_on_late_register() {
        struct Gate {
            m: Mutex<bool>,
            cv: Condvar,
        }
        let gate = Arc::new(Gate {
            m: Mutex::new(false),
            cv: Condvar::new(),
        });
        let a = Abort::new();
        let w: Weak<Gate> = Arc::downgrade(&gate);
        a.register(Box::new(move || {
            if let Some(g) = w.upgrade() {
                *g.m.lock() = true;
                g.cv.notify_all();
            }
        }));
        a.set();
        assert!(*gate.m.lock(), "waker must fire on set");

        // A primitive created after the abort still gets woken immediately.
        *gate.m.lock() = false;
        let w: Weak<Gate> = Arc::downgrade(&gate);
        a.register(Box::new(move || {
            if let Some(g) = w.upgrade() {
                *g.m.lock() = true;
            }
        }));
        assert!(*gate.m.lock(), "late registration fires immediately");
    }
}
