//! Point-to-point channel backend: real collective schedules over
//! per-rank-pair bounded mailboxes.
//!
//! The `Transport` owns one bounded SPSC channel per *ordered* rank pair
//! `(src, dst)`: a mutex-guarded `VecDeque` with two condvars (`not_empty`
//! for receivers, `not_full` for senders) and a small capacity, so a rank
//! that runs ahead blocks instead of buffering unboundedly — the same
//! backpressure an MPI eager/rendezvous protocol provides. Messages carry a
//! tag derived from a per-rank collective counter; since collectives are
//! globally ordered within a group, sender and receiver counters agree, and
//! a tag mismatch on receive means the ranks left lockstep (a bug), not a
//! recoverable condition.
//!
//! Collective schedules (all deterministic, all valid for any group size):
//!
//! * **Barrier** — dissemination: round `k` sends a token to rank
//!   `r + 2^k` and receives from `r − 2^k`; `⌈log₂P⌉` rounds.
//! * **All-Gather** — ring: `P−1` steps, each forwarding the block received
//!   last step to the right neighbour.
//! * **All-Reduce** — distance-doubling (Bruck) exchange of *source-tagged
//!   contributions*, summed locally in ascending rank order. The doubling
//!   schedule is the recursive-doubling butterfly generalized to any `P`.
//! * **Reduce-Scatter** — ring of unreduced segment pieces: the piece of
//!   source `s` for owner `o` travels `s → s+1 → … → o`; owners sum their
//!   pieces in ascending source order.
//! * **Broadcast / Gather / Scatter** — binomial trees relabeled around the
//!   root.
//! * **All-to-All** — pairwise exchange: step `t` sends to `r+t`, receives
//!   from `r−t`.
//!
//! **Determinism / bitwise parity.** The rendezvous oracle sums reduction
//! contributions left-to-right in rank order. A butterfly that combined
//! *partial sums* in-network would associate the floating-point additions
//! differently and change low-order bits. Our ALS collectives are in the
//! short-vector regime (Gram matrices and scalars, `O(R²)` words), where
//! MPI implementations themselves pick allgather-based all-reduce — so the
//! p2p reductions move raw contributions and reduce at the end points, in
//! ascending rank order, making every collective bitwise identical to the
//! rendezvous backend while exercising a real message-passing schedule.
//!
//! **Modeled vs. measured cost.** The [`CostLedger`] is charged with the
//! §II-E closed forms via the same `charge` helpers
//! the rendezvous backend uses, so modeled cost reports are comparable
//! across backends. The traffic that actually crosses the channels —
//! including control rounds such as split membership exchanges — is counted
//! separately per rank in [`TransportCounters`].

use crate::abort::Abort;
use crate::comm::{charge, Collectives};
use crate::cost::CostLedger;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-channel buffer capacity (messages). Small on purpose: it bounds how
/// far a rank can run ahead of a peer before blocking.
const CHAN_CAP: usize = 8;

/// Low 16 tag bits address the round within one collective; the rest is the
/// per-rank collective sequence number.
const ROUND_BITS: u32 = 16;
/// Reserved round id for the payload phase of tree/direct schedules that
/// run after a control round.
const ROUND_PAYLOAD: u64 = (1 << ROUND_BITS) - 1;

type Block = (u32, Vec<f64>);

/// Message body. `Blocks` carry data tagged with the originating (or
/// destination) rank so forwarding schedules stay self-describing.
enum Payload {
    Token,
    Words(Vec<f64>),
    Blocks(Vec<Block>),
}

impl Payload {
    fn words(&self) -> u64 {
        match self {
            Payload::Token => 0,
            Payload::Words(v) => v.len() as u64,
            Payload::Blocks(b) => b.iter().map(|(_, d)| d.len() as u64).sum(),
        }
    }

    fn into_words(self) -> Vec<f64> {
        match self {
            Payload::Words(v) => v,
            _ => panic!("p2p payload type mismatch (expected words)"),
        }
    }

    fn into_blocks(self) -> Vec<Block> {
        match self {
            Payload::Blocks(b) => b,
            _ => panic!("p2p payload type mismatch (expected blocks)"),
        }
    }
}

struct Msg {
    tag: u64,
    payload: Payload,
}

/// One bounded mailbox for one ordered rank pair.
#[derive(Default)]
struct Chan {
    q: Mutex<VecDeque<Msg>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Shared channel fabric of one group: `size²` mailboxes plus the split
/// registry mirroring the rendezvous backend's scheme.
struct Transport {
    size: usize,
    chans: Vec<Chan>,
    abort: Abort,
    splits: Mutex<HashMap<(u64, i64), Arc<Transport>>>,
    split_seq: Mutex<u64>,
}

impl Transport {
    fn new(size: usize, abort: Abort) -> Arc<Transport> {
        assert!(
            size < (1 << ROUND_BITS),
            "p2p transport supports at most {} ranks",
            (1 << ROUND_BITS) - 1
        );
        let t = Arc::new(Transport {
            size,
            chans: (0..size * size).map(|_| Chan::default()).collect(),
            abort: abort.clone(),
            splits: Mutex::new(HashMap::new()),
            split_seq: Mutex::new(0),
        });
        let weak = Arc::downgrade(&t);
        abort.register(Box::new(move || {
            if let Some(t) = weak.upgrade() {
                for ch in &t.chans {
                    let _q = ch.q.lock();
                    ch.not_empty.notify_all();
                    ch.not_full.notify_all();
                }
            }
        }));
        t
    }

    #[inline]
    fn chan(&self, src: usize, dst: usize) -> &Chan {
        &self.chans[src * self.size + dst]
    }

    /// Blocking bounded send. Panics if the world is poisoned while waiting,
    /// so no rank hangs on a dead peer's full mailbox.
    fn send(&self, src: usize, dst: usize, msg: Msg) {
        debug_assert_ne!(src, dst, "p2p schedules never self-send");
        let ch = self.chan(src, dst);
        let mut q = ch.q.lock();
        while q.len() >= CHAN_CAP {
            self.abort.check();
            ch.not_full.wait(&mut q);
        }
        self.abort.check();
        q.push_back(msg);
        ch.not_empty.notify_one();
    }

    /// Blocking receive; asserts the expected tag (ranks must stay in
    /// collective lockstep). Panics if the world is poisoned while waiting.
    fn recv(&self, src: usize, dst: usize, tag: u64) -> Payload {
        let ch = self.chan(src, dst);
        let mut q = ch.q.lock();
        while q.is_empty() {
            self.abort.check();
            ch.not_empty.wait(&mut q);
        }
        let msg = q.pop_front().expect("non-empty queue");
        ch.not_full.notify_one();
        drop(q);
        assert_eq!(
            msg.tag, tag,
            "p2p tag mismatch on {src}->{dst}: ranks left collective lockstep"
        );
        msg.payload
    }
}

/// Measured per-rank wire traffic of the p2p backend: what actually crossed
/// the channels, including control rounds. Contrast with the rank's
/// [`CostLedger`], which records the §II-E *model* charges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Messages pushed into peer mailboxes.
    pub msgs_sent: u64,
    /// Payload words (`f64`s) pushed into peer mailboxes.
    pub words_sent: u64,
    /// Messages popped from this rank's mailboxes.
    pub msgs_recv: u64,
    /// Payload words popped from this rank's mailboxes.
    pub words_recv: u64,
}

#[derive(Clone, Default)]
struct WireLedger(Arc<Mutex<TransportCounters>>);

impl WireLedger {
    fn on_send(&self, words: u64) {
        let mut c = self.0.lock();
        c.msgs_sent += 1;
        c.words_sent += words;
    }

    fn on_recv(&self, words: u64) {
        let mut c = self.0.lock();
        c.msgs_recv += 1;
        c.words_recv += words;
    }

    fn snapshot(&self) -> TransportCounters {
        *self.0.lock()
    }
}

/// The point-to-point channel backend. See the module docs for the
/// schedules and the determinism argument.
///
/// Clones and sub-communicators created by [`Collectives::split`] share the
/// rank's cost ledger and wire counters.
#[derive(Clone)]
pub struct P2p {
    transport: Arc<Transport>,
    rank: usize,
    size: usize,
    ledger: CostLedger,
    wire: WireLedger,
    /// Per-rank collective sequence number; shared by clones of the same
    /// rank handle so tags stay aligned across peers.
    seq: Arc<AtomicU64>,
}

impl P2p {
    /// Create the world for `size` ranks. Returned in rank order; each must
    /// be moved to its own thread.
    pub fn world(size: usize) -> Vec<P2p> {
        assert!(size > 0);
        let transport = Transport::new(size, Abort::new());
        (0..size)
            .map(|rank| P2p {
                transport: transport.clone(),
                rank,
                size,
                ledger: CostLedger::new(),
                wire: WireLedger::default(),
                seq: Arc::new(AtomicU64::new(0)),
            })
            .collect()
    }

    /// Measured wire traffic of this rank so far.
    pub fn wire_counters(&self) -> TransportCounters {
        self.wire.snapshot()
    }

    /// Poison the world: every rank blocked on a channel (of this world or
    /// any sub-group) wakes up and panics.
    pub(crate) fn abort(&self) {
        self.transport.abort.set();
    }

    /// Tag prefix for the next collective on this rank.
    fn op_tag(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) << ROUND_BITS
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        self.wire.on_send(payload.words());
        self.transport.send(self.rank, dst, Msg { tag, payload });
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        let payload = self.transport.recv(src, self.rank, tag);
        self.wire.on_recv(payload.words());
        payload
    }

    /// Dissemination synchronization (uncharged): `⌈log₂P⌉` token rounds.
    fn sync(&self, tag: u64) {
        let p = self.size;
        let mut step = 1usize;
        let mut round = 0u64;
        while step < p {
            let to = (self.rank + step) % p;
            let from = (self.rank + p - step) % p;
            self.send(to, tag | round, Payload::Token);
            match self.recv(from, tag | round) {
                Payload::Token => {}
                _ => panic!("p2p payload type mismatch (expected token)"),
            }
            step <<= 1;
            round += 1;
        }
    }

    /// Distance-doubling (Bruck) exchange of source-tagged blocks
    /// (uncharged): after `⌈log₂P⌉` rounds every rank holds every rank's
    /// contribution, returned indexed by source rank.
    ///
    /// Invariant: after round `k`, this rank holds the contributions of
    /// sources `(rank − j) mod P` for `j < min(2ᵏ, P)`; round `k` forwards
    /// the oldest `min(2ᵏ, P − 2ᵏ)` of them a distance `2ᵏ` to the right.
    fn exchange_blocks(&self, tag: u64, mine: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size;
        let me = self.rank;
        let mut held: Vec<Block> = vec![(me as u32, mine.to_vec())];
        let mut step = 1usize;
        let mut round = 0u64;
        while step < p {
            let to = (me + step) % p;
            let from = (me + p - step) % p;
            let send_cnt = step.min(p - step);
            self.send(to, tag | round, Payload::Blocks(held[..send_cnt].to_vec()));
            let got = self.recv(from, tag | round).into_blocks();
            held.extend(got);
            step <<= 1;
            round += 1;
        }
        let mut by_src: Vec<Option<Vec<f64>>> = (0..p).map(|_| None).collect();
        for (src, data) in held {
            let slot = &mut by_src[src as usize];
            debug_assert!(slot.is_none(), "duplicate contribution from rank {src}");
            *slot = Some(data);
        }
        by_src
            .into_iter()
            .map(|d| d.expect("exchange must deliver every contribution"))
            .collect()
    }

    /// Ring all-gather of one block per rank (uncharged), returned indexed
    /// by source rank. `P−1` steps; step `t` forwards the block received at
    /// step `t−1`.
    fn ring_gather_v(&self, tag: u64, v: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size;
        let me = self.rank;
        let mut by_src: Vec<Option<Vec<f64>>> = (0..p).map(|_| None).collect();
        by_src[me] = Some(v.to_vec());
        let mut cur: Block = (me as u32, v.to_vec());
        let to = (me + 1) % p;
        let from = (me + p - 1) % p;
        for t in 0..p.saturating_sub(1) {
            self.send(to, tag | t as u64, Payload::Blocks(vec![cur]));
            let got = self.recv(from, tag | t as u64).into_blocks();
            debug_assert_eq!(got.len(), 1, "ring forwards exactly one block");
            let (src, data) = got.into_iter().next().expect("ring block");
            by_src[src as usize] = Some(data.clone());
            cur = (src, data);
        }
        by_src
            .into_iter()
            .map(|d| d.expect("ring must deliver every block"))
            .collect()
    }
}

impl Collectives for P2p {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    fn barrier(&self) {
        let tag = self.op_tag();
        self.sync(tag);
        charge::barrier(&self.ledger, self.size);
    }

    fn all_gather(&self, v: &[f64]) -> Vec<f64> {
        let parts = self.all_gather_v(v);
        let total: usize = parts.iter().map(|b| b.len()).sum();
        let mut out = Vec::with_capacity(total);
        for b in parts {
            out.extend_from_slice(&b);
        }
        out
    }

    fn all_gather_v(&self, v: &[f64]) -> Vec<Vec<f64>> {
        let tag = self.op_tag();
        let res = self.ring_gather_v(tag, v);
        let total: usize = res.iter().map(|r| r.len()).sum();
        charge::all_gather(&self.ledger, self.size, total);
        res
    }

    fn all_reduce_sum(&self, v: &[f64]) -> Vec<f64> {
        let tag = self.op_tag();
        let contributions = self.exchange_blocks(tag, v);
        charge::all_reduce(&self.ledger, self.size, v.len());
        let mut out = vec![0.0f64; v.len()];
        for s in &contributions {
            assert_eq!(s.len(), out.len(), "all_reduce length mismatch");
            for (o, x) in out.iter_mut().zip(s.iter()) {
                *o += x;
            }
        }
        out
    }

    fn reduce_scatter_sum(&self, v: &[f64], counts: &[usize]) -> Vec<f64> {
        let p = self.size;
        let me = self.rank;
        assert_eq!(counts.len(), p, "one count per rank required");
        let total: usize = counts.iter().sum();
        assert_eq!(total, v.len(), "counts must cover the whole vector");
        let tag = self.op_tag();
        let mut offsets = Vec::with_capacity(p);
        let mut acc = 0usize;
        for &c in counts {
            offsets.push(acc);
            acc += c;
        }
        let seg = |owner: usize| &v[offsets[owner]..offsets[owner] + counts[owner]];

        // pieces[s] = source s's contribution to my segment. The piece of
        // source s for owner o rides the ring s → s+1 → … → o: at step t
        // this rank forwards the pieces of source (rank − t + 1) mod P that
        // still have hops left, and keeps the one addressed to itself.
        let mut pieces: Vec<Option<Vec<f64>>> = (0..p).map(|_| None).collect();
        pieces[me] = Some(seg(me).to_vec());
        let to = (me + 1) % p;
        let from = (me + p - 1) % p;
        let mut carry: Vec<Block> = Vec::new();
        for t in 1..p {
            let bundle: Vec<Block> = if t == 1 {
                (0..p)
                    .filter(|&o| o != me)
                    .map(|o| (o as u32, seg(o).to_vec()))
                    .collect()
            } else {
                std::mem::take(&mut carry)
            };
            self.send(to, tag | (t - 1) as u64, Payload::Blocks(bundle));
            let got = self.recv(from, tag | (t - 1) as u64).into_blocks();
            let src = (me + p - t) % p;
            for (owner, data) in got {
                if owner as usize == me {
                    pieces[src] = Some(data);
                } else {
                    carry.push((owner, data));
                }
            }
        }
        debug_assert!(carry.is_empty(), "all pieces must reach their owner");
        charge::reduce_scatter(&self.ledger, p, v.len());
        let mut out = vec![0.0f64; counts[me]];
        for s in pieces.into_iter() {
            let s = s.expect("missing reduce-scatter piece");
            for (o, x) in out.iter_mut().zip(s.iter()) {
                *o += x;
            }
        }
        out
    }

    fn broadcast(&self, root: usize, v: &[f64]) -> Vec<f64> {
        let p = self.size;
        assert!(root < p, "root out of range");
        let me = self.rank;
        let tag = self.op_tag();
        let vr = (me + p - root) % p;
        let data: Vec<f64>;
        let mut mask = 1usize;
        if vr == 0 {
            data = v.to_vec();
            while mask < p {
                mask <<= 1;
            }
        } else {
            // My receive round is the lowest set bit of the relative rank;
            // the parent is that bit cleared.
            while vr & mask == 0 {
                mask <<= 1;
            }
            let parent = (vr - mask + root) % p;
            data = self.recv(parent, tag).into_words();
        }
        let mut m = mask >> 1;
        while m > 0 {
            let child = vr + m;
            if child < p {
                self.send((child + root) % p, tag, Payload::Words(data.clone()));
            }
            m >>= 1;
        }
        charge::broadcast(&self.ledger, p, data.len());
        data
    }

    fn gather(&self, root: usize, v: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size;
        assert!(root < p, "root out of range");
        let me = self.rank;
        let tag = self.op_tag();
        // Control round: lengths, so every rank charges the same total the
        // rendezvous backend does (non-root ranks never see the payloads).
        let lens = self.exchange_blocks(tag, &[v.len() as f64]);
        let total: usize = lens.iter().map(|l| l[0] as usize).sum();
        // Binomial tree towards the root: leaves send first; inner nodes
        // absorb each child subtree, then forward the accumulated bundle.
        let vr = (me + p - root) % p;
        let mut bundle: Vec<Block> = vec![(me as u32, v.to_vec())];
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let parent = (vr - mask + root) % p;
                self.send(
                    parent,
                    tag | ROUND_PAYLOAD,
                    Payload::Blocks(std::mem::take(&mut bundle)),
                );
                break;
            }
            let child = vr + mask;
            if child < p {
                let got = self
                    .recv((child + root) % p, tag | ROUND_PAYLOAD)
                    .into_blocks();
                bundle.extend(got);
            }
            mask <<= 1;
        }
        charge::gather(&self.ledger, p, total);
        if me == root {
            let mut by_src: Vec<Option<Vec<f64>>> = (0..p).map(|_| None).collect();
            for (src, data) in bundle {
                by_src[src as usize] = Some(data);
            }
            by_src
                .into_iter()
                .map(|d| d.expect("gather must deliver every contribution"))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn scatter(&self, root: usize, chunks: Vec<Vec<f64>>) -> Vec<f64> {
        let p = self.size;
        assert!(root < p, "root out of range");
        let me = self.rank;
        let tag = self.op_tag();
        let vr = (me + p - root) % p;
        let rel = |abs: usize| (abs + p - root) % p;
        // Binomial tree from the root: each node receives the bundle for its
        // whole subtree (relative ranks [vr, vr + span)), then halves it
        // towards its children.
        let mut bundle: Vec<Block>;
        let span: usize;
        if vr == 0 {
            assert_eq!(chunks.len(), p, "one chunk per rank required");
            bundle = chunks
                .into_iter()
                .enumerate()
                .map(|(r, c)| (r as u32, c))
                .collect();
            let mut m = 1usize;
            while m < p {
                m <<= 1;
            }
            span = m;
        } else {
            let mut mask = 1usize;
            while vr & mask == 0 {
                mask <<= 1;
            }
            let parent = (vr - mask + root) % p;
            bundle = self.recv(parent, tag).into_blocks();
            span = mask;
        }
        let mut m = span >> 1;
        while m > 0 {
            let child = vr + m;
            if child < p {
                let (keep, give): (Vec<Block>, Vec<Block>) = bundle
                    .into_iter()
                    .partition(|(r, _)| rel(*r as usize) < child);
                bundle = keep;
                self.send((child + root) % p, tag, Payload::Blocks(give));
            }
            m >>= 1;
        }
        debug_assert_eq!(bundle.len(), 1, "only this rank's chunk may remain");
        let (src, mine) = bundle.into_iter().next().expect("own chunk");
        debug_assert_eq!(src as usize, me);
        charge::scatter(&self.ledger, p, mine.len());
        mine
    }

    fn sendrecv_round(&self, msg: Option<(usize, Vec<f64>)>) -> Option<Vec<f64>> {
        let p = self.size;
        let me = self.rank;
        if let Some((dest, _)) = &msg {
            assert!(*dest < p, "destination out of range");
        }
        let tag = self.op_tag();
        // Control round: everyone learns who is sending to whom (encoded as
        // dest + 1; 0 = silent), then payloads go point-to-point.
        let header = [msg.as_ref().map_or(0.0, |(d, _)| (*d + 1) as f64)];
        let headers = self.exchange_blocks(tag, &header);
        let mut incoming_src: Option<usize> = None;
        for (src, h) in headers.iter().enumerate() {
            if h[0] as usize == me + 1 {
                assert!(
                    incoming_src.is_none(),
                    "multiple messages addressed to rank {me} in one round"
                );
                incoming_src = Some(src);
            }
        }
        let sent_words = msg.as_ref().map_or(0, |(_, pay)| pay.len());
        let mut incoming: Option<Vec<f64>> = None;
        if let Some((dest, payload)) = msg {
            if dest == me {
                incoming = Some(payload);
            } else {
                self.send(dest, tag | ROUND_PAYLOAD, Payload::Words(payload));
            }
        }
        if incoming.is_none() {
            if let Some(src) = incoming_src {
                incoming = Some(self.recv(src, tag | ROUND_PAYLOAD).into_words());
            }
        }
        let recv_words = incoming.as_ref().map_or(0, |pay| pay.len());
        charge::sendrecv(&self.ledger, p, sent_words, recv_words);
        incoming
    }

    fn all_to_all(&self, mut chunks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let p = self.size;
        assert_eq!(chunks.len(), p, "one chunk per destination rank");
        let me = self.rank;
        let tag = self.op_tag();
        let sent: usize = chunks.iter().map(|c| c.len()).sum();
        let mut out: Vec<Option<Vec<f64>>> = (0..p).map(|_| None).collect();
        out[me] = Some(std::mem::take(&mut chunks[me]));
        for t in 1..p {
            let to = (me + t) % p;
            let from = (me + p - t) % p;
            self.send(
                to,
                tag | (t - 1) as u64,
                Payload::Words(std::mem::take(&mut chunks[to])),
            );
            out[from] = Some(self.recv(from, tag | (t - 1) as u64).into_words());
        }
        let out: Vec<Vec<f64>> = out
            .into_iter()
            .map(|c| c.expect("all_to_all must fill every slot"))
            .collect();
        let received: usize = out.iter().map(|c| c.len()).sum();
        charge::all_to_all(&self.ledger, p, sent.max(received));
        out
    }

    fn split(&self, color: i64, key: i64) -> P2p {
        let p = self.size;
        let me = self.rank;
        // Membership exchange, mirroring the rendezvous scheme: sort all
        // (color, key, parent rank) triples; same-color ranks form the
        // child group in (key, rank) order.
        let tag = self.op_tag();
        let triples = self.exchange_blocks(tag, &[color as f64, key as f64, me as f64]);
        let mut trs: Vec<(i64, i64, usize)> = triples
            .iter()
            .map(|t| (t[0] as i64, t[1] as i64, t[2] as usize))
            .collect();
        trs.sort_by_key(|&(c, k, r)| (c, k, r));
        let members: Vec<usize> = trs
            .iter()
            .filter(|&&(c, _, _)| c == color)
            .map(|&(_, _, r)| r)
            .collect();
        let my_new_rank = members
            .iter()
            .position(|&r| r == me)
            .expect("member list must contain this rank");
        let group_size = members.len();

        // The lowest-ranked member of each color creates the child
        // transport; everyone retrieves it from the registry keyed by a
        // sequence number all ranks advance together. The child shares the
        // world's abort flag so poisoning reaches sub-groups.
        let seq = *self.transport.split_seq.lock();
        if members[0] == me {
            let child = Transport::new(group_size, self.transport.abort.clone());
            self.transport.splits.lock().insert((seq, color), child);
        }
        self.sync(self.op_tag());
        let child = self
            .transport
            .splits
            .lock()
            .get(&(seq, color))
            .cloned()
            .expect("split registry entry must exist");
        if me == 0 {
            *self.transport.split_seq.lock() += 1;
        }
        self.sync(self.op_tag());
        if members[0] == me {
            self.transport.splits.lock().remove(&(seq, color));
        }

        charge::split(&self.ledger, p);
        P2p {
            transport: child,
            rank: my_new_rank,
            size: group_size,
            ledger: self.ledger.clone(),
            wire: self.wire.clone(),
            seq: Arc::new(AtomicU64::new(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_ranks<R: Send + 'static>(
        size: usize,
        f: impl Fn(P2p) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let comms = P2p::world(size);
        let f = Arc::new(f);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn transport_is_fifo_per_channel() {
        let t = Transport::new(2, Abort::new());
        for i in 0..3u64 {
            t.send(
                0,
                1,
                Msg {
                    tag: i,
                    payload: Payload::Words(vec![i as f64]),
                },
            );
        }
        for i in 0..3u64 {
            assert_eq!(t.recv(0, 1, i).into_words(), vec![i as f64]);
        }
    }

    #[test]
    #[should_panic(expected = "tag mismatch")]
    fn stale_tag_is_rejected() {
        let t = Transport::new(2, Abort::new());
        t.send(
            0,
            1,
            Msg {
                tag: 7,
                payload: Payload::Token,
            },
        );
        let _ = t.recv(0, 1, 8);
    }

    #[test]
    fn barrier_wire_traffic_is_dissemination() {
        // ⌈log₂4⌉ = 2 token rounds per rank, zero payload words.
        let out = run_ranks(4, |c| {
            c.barrier();
            c.wire_counters()
        });
        for s in out {
            assert_eq!(s.msgs_sent, 2);
            assert_eq!(s.msgs_recv, 2);
            assert_eq!(s.words_sent, 0);
        }
    }

    #[test]
    fn all_reduce_wire_traffic_matches_bruck() {
        // P = 4, n = 3: round 0 carries 1 block (n words), round 1 carries
        // 2 blocks (2n words): n(P−1) words over ⌈log₂P⌉ messages per rank.
        let out = run_ranks(4, |c| {
            let _ = c.all_reduce_sum(&[1.0, 2.0, 3.0]);
            c.wire_counters()
        });
        for s in out {
            assert_eq!(s.msgs_sent, 2);
            assert_eq!(s.words_sent, 9);
            assert_eq!(s.msgs_recv, 2);
            assert_eq!(s.words_recv, 9);
        }
    }

    #[test]
    fn all_gather_wire_traffic_matches_ring() {
        // P = 4, n = 2 per rank: P−1 ring steps, each forwarding one
        // n-word block.
        let out = run_ranks(4, |c| {
            let _ = c.all_gather(&[1.0, 2.0]);
            c.wire_counters()
        });
        for s in out {
            assert_eq!(s.msgs_sent, 3);
            assert_eq!(s.words_sent, 6);
            assert_eq!(s.msgs_recv, 3);
            assert_eq!(s.words_recv, 6);
        }
    }

    #[test]
    fn reduce_scatter_ring_delivers_uneven_counts() {
        let out = run_ranks(3, |c| {
            // Sum over ranks of [r, r, r, r, r, r] split as [1, 2, 3].
            let v = vec![c.rank() as f64; 6];
            (c.rank(), c.reduce_scatter_sum(&v, &[1, 2, 3]))
        });
        for (rank, seg) in out {
            assert_eq!(seg, vec![3.0; rank + 1]);
        }
    }

    #[test]
    fn odd_sized_groups_run_every_collective() {
        let out = run_ranks(5, |c| {
            c.barrier();
            let g = c.all_gather(&[c.rank() as f64]);
            let s = c.all_reduce_sum(&[1.0]);
            let b = c.broadcast(3, &if c.rank() == 3 { vec![9.0] } else { vec![] });
            (g, s, b)
        });
        for (g, s, b) in out {
            assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
            assert_eq!(s, vec![5.0]);
            assert_eq!(b, vec![9.0]);
        }
    }

    #[test]
    fn abort_wakes_a_blocked_receiver() {
        let mut comms = P2p::world(2);
        let c1 = comms.pop().expect("rank 1");
        let c0 = comms.pop().expect("rank 0");
        // Rank 0 blocks in the barrier waiting for rank 1, which never
        // calls it; poisoning the world must turn the wait into a panic.
        let h = thread::spawn(move || c0.barrier());
        c1.abort();
        let err = h.join().expect_err("blocked rank must panic, not hang");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("peer rank"), "got: {msg}");
    }
}
