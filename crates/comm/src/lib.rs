//! # pp-comm — simulated distributed-memory BSP runtime
//!
//! Substitute for MPI on the Stampede2 supercomputer: logical ranks run as
//! OS threads with private data and communicate only through MPI-style
//! collectives ([`comm::Communicator`]). Every collective and kernel charges
//! an α–β–γ–ν cost ledger ([`cost`]), and closed-form Table I cost
//! formulas ([`model`]) extrapolate measured runs to paper scale
//! (P = 1024). See DESIGN.md §1 for why this substitution preserves the
//! paper's observable behaviour.
//!
//! # Example
//!
//! ```
//! use pp_comm::Runtime;
//!
//! // Four logical ranks sum their rank numbers with an All-Reduce.
//! let out = Runtime::new(4).run(|ctx| {
//!     ctx.comm.all_reduce_sum(&[ctx.rank() as f64])[0]
//! });
//! assert_eq!(out.results, vec![6.0; 4]);
//! // Every collective charged the α–β cost ledger.
//! assert!(out.report.critical.messages > 0);
//! ```

pub mod comm;
pub mod cost;
pub mod model;
pub mod runtime;

pub use comm::Communicator;
pub use cost::{CostCounters, CostLedger, CostModel, CostReport};
pub use model::{sweep_cost, Method, SweepCost};
pub use runtime::{RankCtx, RunOutput, Runtime};
