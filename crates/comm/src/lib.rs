//! # pp-comm — distributed-memory BSP runtime with pluggable backends
//!
//! Substitute for MPI on the Stampede2 supercomputer: logical ranks run as
//! OS threads with private data and communicate only through MPI-style
//! collectives (the [`comm::Collectives`] trait). Two backends implement
//! the surface — the centralized [`comm::Rendezvous`] slot (the oracle) and
//! the [`p2p::P2p`] channel transport running real collective schedules
//! (dissemination barrier, ring all-gather, distance-doubling all-reduce,
//! binomial trees), bitwise identical to the oracle by construction. Every
//! collective charges an α–β–γ–ν cost ledger ([`cost`]) with the §II-E
//! closed forms, the p2p backend additionally measures its actual wire
//! traffic ([`p2p::TransportCounters`]), and closed-form Table I cost
//! formulas ([`model`]) extrapolate measured runs to paper scale
//! (P = 1024). See DESIGN.md §1 and §1i for why this substitution
//! preserves the paper's observable behaviour.
//!
//! # Example
//!
//! ```
//! use pp_comm::{Backend, Collectives, Runtime};
//!
//! // Four logical ranks sum their rank numbers with an All-Reduce.
//! let out = Runtime::new(4).run(|ctx| {
//!     ctx.comm.all_reduce_sum(&[ctx.rank() as f64])[0]
//! });
//! assert_eq!(out.results, vec![6.0; 4]);
//! // Every collective charged the α–β cost ledger.
//! assert!(out.report.critical.messages > 0);
//!
//! // The same program on the channel backend: identical results, plus
//! // measured wire traffic.
//! let out = Runtime::with_backend(4, Backend::P2p).run(|ctx| {
//!     ctx.comm.all_reduce_sum(&[ctx.rank() as f64])[0]
//! });
//! assert_eq!(out.results, vec![6.0; 4]);
//! assert!(out.transport.expect("measured")[0].msgs_sent > 0);
//! ```

mod abort;
pub mod comm;
pub mod cost;
pub mod model;
pub mod p2p;
pub mod runtime;

pub use comm::{Backend, Collectives, CommWorld, Communicator, Rendezvous};
pub use cost::{CostCounters, CostLedger, CostModel, CostReport};
pub use model::{sweep_cost, Method, SweepCost};
pub use p2p::{P2p, TransportCounters};
pub use runtime::{RankCtx, RunOutput, Runtime};
