//! The BSP α–β–γ–ν cost model of the paper (§II-E) and per-rank ledgers.
//!
//! * `α` — cost of sending/receiving one message (latency),
//! * `β` — cost of moving one word between processors (horizontal bandwidth),
//! * `γ` — cost of one arithmetic operation,
//! * `ν` — cost of moving one word between main memory and cache
//!   (vertical bandwidth).
//!
//! Every collective and every kernel invocation charges a [`CostLedger`];
//! the harness converts ledgers into modeled times with a [`CostModel`],
//! which is how we report paper-scale (P = 1024) numbers that cannot be
//! executed directly on this machine.

use parking_lot::Mutex;
use std::sync::Arc;

/// Machine parameters for the α–β–γ–ν model, in seconds per unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Seconds per message (latency).
    pub alpha: f64,
    /// Seconds per word moved between processors.
    pub beta: f64,
    /// Seconds per flop.
    pub gamma: f64,
    /// Seconds per word moved between memory and cache.
    pub nu: f64,
}

impl CostModel {
    /// Parameters representative of a fat-tree interconnect with ~100 Gb/s
    /// links and a KNL-class node, satisfying the paper's assumptions
    /// `α ≫ β ≫ γ` and `ν ≤ γ·√H`.
    pub fn stampede2_like() -> Self {
        CostModel {
            alpha: 2.0e-6,       // ~2 µs per message
            beta: 8.0 / 12.5e9,  // 8-byte word over ~100 Gb/s
            gamma: 1.0 / 40.0e9, // ~40 Gflop/s per process (double precision)
            nu: 8.0 / 80.0e9,    // ~80 GB/s per-process memory bandwidth
        }
    }

    /// Modeled execution time for a set of counters.
    pub fn time(&self, c: &CostCounters) -> f64 {
        self.alpha * c.messages as f64
            + self.beta * c.comm_words as f64
            + self.gamma * c.flops as f64
            + self.nu * c.mem_words as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::stampede2_like()
    }
}

/// Raw counters accumulated by one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Number of point-to-point messages implied by the collectives
    /// (log₂ P per collective stage, per the paper's collective costs).
    pub messages: u64,
    /// Words sent/received across the network.
    pub comm_words: u64,
    /// Arithmetic operations.
    pub flops: u64,
    /// Words moved between main memory and cache (vertical traffic).
    pub mem_words: u64,
}

impl CostCounters {
    /// Component-wise sum.
    pub fn add(&mut self, other: &CostCounters) {
        self.messages += other.messages;
        self.comm_words += other.comm_words;
        self.flops += other.flops;
        self.mem_words += other.mem_words;
    }

    /// Component-wise max (critical-path combination across ranks).
    pub fn max(&self, other: &CostCounters) -> CostCounters {
        CostCounters {
            messages: self.messages.max(other.messages),
            comm_words: self.comm_words.max(other.comm_words),
            flops: self.flops.max(other.flops),
            mem_words: self.mem_words.max(other.mem_words),
        }
    }
}

/// A shared, thread-safe ledger of model costs for one rank.
///
/// Cloning shares the underlying counters (sub-communicators charge the
/// same rank ledger as the world communicator).
#[derive(Clone, Default)]
pub struct CostLedger {
    inner: Arc<Mutex<CostCounters>>,
}

impl CostLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `count` messages.
    pub fn charge_messages(&self, count: u64) {
        self.inner.lock().messages += count;
    }

    /// Charge words of horizontal (network) traffic.
    pub fn charge_comm_words(&self, words: u64) {
        self.inner.lock().comm_words += words;
    }

    /// Charge arithmetic operations.
    pub fn charge_flops(&self, flops: u64) {
        self.inner.lock().flops += flops;
    }

    /// Charge words of vertical (memory) traffic.
    pub fn charge_mem_words(&self, words: u64) {
        self.inner.lock().mem_words += words;
    }

    /// Snapshot of the current counters.
    pub fn snapshot(&self) -> CostCounters {
        *self.inner.lock()
    }

    /// Reset all counters to zero, returning the previous values.
    pub fn reset(&self) -> CostCounters {
        std::mem::take(&mut *self.inner.lock())
    }
}

/// Critical-path counters across all ranks (max per component) plus totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostReport {
    /// Per-component maximum over ranks — the BSP critical path.
    pub critical: CostCounters,
    /// Per-component sum over ranks.
    pub total: CostCounters,
}

impl CostReport {
    /// Combine per-rank snapshots.
    pub fn from_ranks(ranks: &[CostCounters]) -> Self {
        let mut report = CostReport::default();
        for c in ranks {
            report.critical = report.critical.max(c);
            report.total.add(c);
        }
        report
    }

    /// Modeled wall-clock time under `model` (critical path).
    pub fn modeled_time(&self, model: &CostModel) -> f64 {
        model.time(&self.critical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let l = CostLedger::new();
        l.charge_flops(100);
        l.charge_flops(50);
        l.charge_messages(3);
        l.charge_comm_words(7);
        l.charge_mem_words(11);
        let s = l.snapshot();
        assert_eq!(s.flops, 150);
        assert_eq!(s.messages, 3);
        assert_eq!(s.comm_words, 7);
        assert_eq!(s.mem_words, 11);
    }

    #[test]
    fn ledger_clone_shares_counters() {
        let l = CostLedger::new();
        let l2 = l.clone();
        l2.charge_flops(42);
        assert_eq!(l.snapshot().flops, 42);
    }

    #[test]
    fn report_combines_max_and_sum() {
        let a = CostCounters {
            messages: 1,
            comm_words: 10,
            flops: 100,
            mem_words: 5,
        };
        let b = CostCounters {
            messages: 4,
            comm_words: 2,
            flops: 50,
            mem_words: 9,
        };
        let r = CostReport::from_ranks(&[a, b]);
        assert_eq!(r.critical.messages, 4);
        assert_eq!(r.critical.comm_words, 10);
        assert_eq!(r.total.flops, 150);
    }

    #[test]
    fn model_time_is_linear() {
        let m = CostModel {
            alpha: 1.0,
            beta: 0.1,
            gamma: 0.01,
            nu: 0.001,
        };
        let c = CostCounters {
            messages: 2,
            comm_words: 10,
            flops: 100,
            mem_words: 1000,
        };
        assert!((m.time(&c) - (2.0 + 1.0 + 1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_and_clears() {
        let l = CostLedger::new();
        l.charge_flops(5);
        let old = l.reset();
        assert_eq!(old.flops, 5);
        assert_eq!(l.snapshot().flops, 0);
    }
}
