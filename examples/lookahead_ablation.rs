//! Cross-mode lookahead ablation: time exact CP-ALS with the speculative
//! first-level contraction on vs. off, for both tree policies, and report
//! the speculation ledger. Results are bit-identical either way (enforced
//! by `tests/lookahead_parity.rs`); this probe shows the wall-time effect
//! and the hit rate on the current machine.
//!
//! Run: `cargo run --release --example lookahead_ablation [-- --threads N]`

use parallel_pp::core::{cp_als, AlsConfig};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::dtree::TreePolicy;
use std::time::Instant;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let threads = match argv.iter().position(|a| a == "--threads") {
        Some(i) => match argv.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("error: --threads expects a positive integer");
                std::process::exit(2);
            }
        },
        None => 2,
    };
    println!("pool width: {threads} (1 physical core flattens the overlap)");
    let t = noisy_rank(&[72, 72, 72], 16, 0.05, 7);
    for policy in [TreePolicy::Standard, TreePolicy::MultiSweep] {
        for lookahead in [true, false] {
            let cfg = AlsConfig::new(64)
                .with_policy(policy)
                .with_max_sweeps(12)
                .with_tol(0.0)
                .with_threads(threads)
                .with_lookahead(lookahead);
            let _ = cp_als(&t, &cfg); // warm the pool and caches
            let t0 = Instant::now();
            let out = cp_als(&t, &cfg);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let s = out.report.stats;
            println!(
                "{policy:?} lookahead={lookahead}: {ms:7.1} ms | ttm={} mttv={} | \
                 spec launched/hit/wasted = {}/{}/{}",
                s.ttm_count, s.mttv_count, s.spec_launched, s.spec_hits, s.spec_wasted,
            );
        }
    }
}
