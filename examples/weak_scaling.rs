//! Distributed-memory weak scaling on the simulated BSP runtime (paper
//! Fig. 3a in miniature): per-sweep time of parallel CP-ALS across grids,
//! plus the rank-0 cost-model ledger and its extrapolation to 1024 ranks.
//!
//! Run: `cargo run --release --example weak_scaling`

use parallel_pp::comm::{Collectives, CostModel, CostReport, Runtime};
use parallel_pp::core::par_common::ParState;
use parallel_pp::core::AlsConfig;
use parallel_pp::dtree::TreePolicy;
use parallel_pp::grid::{DistTensor, ProcGrid};
use parallel_pp::tensor::rng::{seeded, uniform_tensor};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let s_local = 32;
    let rank = 48;
    let model = CostModel::stampede2_like();

    for grid_dims in [vec![1, 1, 1], vec![1, 1, 2], vec![1, 2, 2], vec![2, 2, 2]] {
        let grid = ProcGrid::new(grid_dims.clone());
        let p = grid.size();
        let dims: Vec<usize> = (0..3).map(|i| s_local * grid.dim(i)).collect();
        let mut rng = seeded(3);
        let t = Arc::new(uniform_tensor(&dims, &mut rng));
        let cfg = AlsConfig::new(rank).with_policy(TreePolicy::MultiSweep);

        let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
        let out = Runtime::new(p).run(move |ctx| {
            let local = DistTensor::from_global(&t2, &g2, ctx.rank());
            let mut st = ParState::init(ctx, &g2, &local, &c2);
            // Warm-up (drain the trailing speculation so it cannot run
            // into the timed region).
            for n in 0..3 {
                let _ = st.update_mode_exact(ctx, &c2, n);
            }
            st.engine.drain_lookahead();
            ctx.comm.ledger().reset();
            ctx.comm.barrier();
            let t0 = Instant::now();
            let sweeps = 3;
            for _ in 0..sweeps {
                for n in 0..3 {
                    let _ = st.update_mode_exact(ctx, &c2, n);
                }
            }
            ctx.comm.barrier();
            let secs = t0.elapsed().as_secs_f64() / sweeps as f64;
            // Settle the timed region's trailing speculation so it cannot
            // run into the next grid configuration's measurement.
            st.engine.drain_lookahead();
            secs
        });
        let per_sweep = out.results[0];
        let report = CostReport::from_ranks(&out.costs);
        println!(
            "grid {:?}: measured {:.1} ms/sweep | ledger: {:.1} Mflop, {:.1} Kwords comm, modeled {:.2} ms",
            grid_dims,
            per_sweep * 1e3,
            report.critical.flops as f64 / 1e6 / 3.0,
            report.critical.comm_words as f64 / 1e3 / 3.0,
            report.modeled_time(&model) / 3.0 * 1e3,
        );
    }

    println!("\nextrapolation to the paper's scale (s_local=400, R=400):");
    for grid in [vec![4, 4, 4], vec![8, 8, 8], vec![8, 8, 16]] {
        let p: usize = grid.iter().product();
        let s = 400.0 * (p as f64).powf(1.0 / 3.0);
        let dt =
            parallel_pp::comm::sweep_cost(parallel_pp::comm::Method::Dt, 3, s, 400.0, p as f64)
                .modeled_time(&model);
        let ms =
            parallel_pp::comm::sweep_cost(parallel_pp::comm::Method::Msdt, 3, s, 400.0, p as f64)
                .modeled_time(&model);
        let pp = parallel_pp::comm::sweep_cost(
            parallel_pp::comm::Method::PpApprox,
            3,
            s,
            400.0,
            p as f64,
        )
        .modeled_time(&model);
        println!(
            "  grid {grid:?} (P={p}): DT {dt:.3}s  MSDT {ms:.3}s (x{:.2})  PP-approx {pp:.3}s (x{:.2})",
            dt / ms,
            dt / pp
        );
    }
}
