//! Quickstart: decompose a noisy low-rank tensor with CP-ALS and with
//! pairwise perturbation, and compare.
//!
//! Run: `cargo run --release --example quickstart`

use parallel_pp::core::{cp_als, pp_cp_als, AlsConfig, SweepKind};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::dtree::TreePolicy;

fn main() {
    // A 60×60×60 tensor of CP rank 8 plus 5% Gaussian noise.
    let t = noisy_rank(&[60, 60, 60], 8, 0.05, 42);
    println!("input tensor: {} ({} elements)", t.shape(), t.len());

    // --- exact CP-ALS through the multi-sweep dimension tree -------------
    let cfg = AlsConfig::new(8)
        .with_policy(TreePolicy::MultiSweep)
        .with_tol(1e-6)
        .with_max_sweeps(100);
    let exact = cp_als(&t, &cfg);
    println!(
        "\nMSDT CP-ALS: {} sweeps, final fitness {:.5}, total {:.2}s",
        exact.report.sweeps.len(),
        exact.report.final_fitness,
        exact.report.total_secs()
    );

    // --- pairwise-perturbation CP-ALS -------------------------------------
    let pp = pp_cp_als(&t, &cfg.clone().with_pp_tol(0.2));
    println!(
        "PP-CP-ALS:   {} sweeps ({} exact, {} PP-init, {} PP-approx), final fitness {:.5}, total {:.2}s",
        pp.report.sweeps.len(),
        pp.report.count(SweepKind::Exact),
        pp.report.count(SweepKind::PpInit),
        pp.report.count(SweepKind::PpApprox),
        pp.report.final_fitness,
        pp.report.total_secs()
    );
    println!(
        "speed-up to finish: {:.2}x",
        exact.report.total_secs() / pp.report.total_secs()
    );

    // First few points of the fitness trace.
    println!("\nfitness trace (PP):");
    for s in pp.report.sweeps.iter().take(8) {
        println!(
            "  {:9} t={:7.3}s fitness={:.5}",
            format!("{:?}", s.kind),
            s.cumulative_secs,
            s.fitness
        );
    }
}
