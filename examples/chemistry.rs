//! Quantum-chemistry workload (paper Fig. 5b–d): CP-compress a synthetic
//! density-fitting Cholesky factor and compare DT, MSDT and PP.
//!
//! Run: `cargo run --release --example chemistry`

use parallel_pp::core::{cp_als, pp_cp_als, AlsConfig, SweepKind};
use parallel_pp::datagen::chemistry::{density_fitting_tensor, ChemistryConfig};
use parallel_pp::dtree::TreePolicy;

fn main() {
    let cfg = ChemistryConfig {
        n_orb: 28,
        n_aux: 16 * 28,
        ..ChemistryConfig::default()
    };
    let t = density_fitting_tensor(&cfg, 7);
    println!(
        "density-fitting surrogate: {} (aux × orb × orb), ‖T‖ = {:.3e}",
        t.shape(),
        t.norm()
    );

    for rank in [12usize, 24] {
        println!("\n--- CP rank {rank} ---");
        let base = AlsConfig::new(rank)
            .with_tol(1e-5)
            .with_max_sweeps(80)
            .with_pp_tol(0.1);

        let dt = cp_als(&t, &base.clone().with_policy(TreePolicy::Standard));
        let msdt = cp_als(&t, &base.clone().with_policy(TreePolicy::MultiSweep));
        let pp = pp_cp_als(&t, &base.clone().with_policy(TreePolicy::MultiSweep));

        println!(
            "DT   : fitness {:.4} in {:6.2}s ({} sweeps)",
            dt.report.final_fitness,
            dt.report.total_secs(),
            dt.report.sweeps.len()
        );
        println!(
            "MSDT : fitness {:.4} in {:6.2}s ({} sweeps)",
            msdt.report.final_fitness,
            msdt.report.total_secs(),
            msdt.report.sweeps.len()
        );
        println!(
            "PP   : fitness {:.4} in {:6.2}s ({} exact + {} init + {} approx sweeps)",
            pp.report.final_fitness,
            pp.report.total_secs(),
            pp.report.count(SweepKind::Exact),
            pp.report.count(SweepKind::PpInit),
            pp.report.count(SweepKind::PpApprox),
        );

        let target = dt
            .report
            .final_fitness
            .min(msdt.report.final_fitness)
            .min(pp.report.final_fitness)
            - 1e-4;
        if let (Some(a), Some(c)) = (
            dt.report.time_to_fitness(target),
            pp.report.time_to_fitness(target),
        ) {
            println!("PP speed-up to fitness {target:.4}: {:.2}x over DT", a / c);
        }
    }
}
