//! Image workloads (paper Fig. 5e–f): the COIL-like rotating-object tensor
//! and the hyperspectral time-lapse surrogate, decomposed with DT vs PP.
//!
//! Run: `cargo run --release --example image_datasets`

use parallel_pp::core::{cp_als, pp_cp_als, AlsConfig, SweepKind};
use parallel_pp::datagen::coil::{coil_tensor, CoilConfig};
use parallel_pp::datagen::timelapse::{timelapse_tensor, TimelapseConfig};
use parallel_pp::dtree::TreePolicy;
use parallel_pp::tensor::DenseTensor;

fn compare(name: &str, t: &DenseTensor, rank: usize, pp_tol: f64) {
    println!("\n=== {name}: {} , R={rank} ===", t.shape());
    let base = AlsConfig::new(rank)
        .with_tol(1e-5)
        .with_max_sweeps(60)
        .with_pp_tol(pp_tol);
    let dt = cp_als(t, &base.clone().with_policy(TreePolicy::Standard));
    let pp = pp_cp_als(t, &base.clone().with_policy(TreePolicy::MultiSweep));
    println!(
        "DT : fitness {:.4} in {:6.2}s ({} sweeps)",
        dt.report.final_fitness,
        dt.report.total_secs(),
        dt.report.sweeps.len()
    );
    println!(
        "PP : fitness {:.4} in {:6.2}s ({} exact / {} init / {} approx)",
        pp.report.final_fitness,
        pp.report.total_secs(),
        pp.report.count(SweepKind::Exact),
        pp.report.count(SweepKind::PpInit),
        pp.report.count(SweepKind::PpApprox),
    );
    let target = dt.report.final_fitness.min(pp.report.final_fitness) - 1e-4;
    if let (Some(a), Some(b)) = (
        dt.report.time_to_fitness(target),
        pp.report.time_to_fitness(target),
    ) {
        println!("PP speed-up to fitness {target:.4}: {:.2}x", a / b);
    }
}

fn main() {
    let coil = coil_tensor(&CoilConfig {
        size: 32,
        objects: 5,
        poses: 24,
    });
    compare("COIL-like (Fig. 5e)", &coil, 20, 0.1);

    let tl = timelapse_tensor(
        &TimelapseConfig {
            height: 48,
            width: 64,
            bands: 33,
            times: 9,
            materials: 12,
            noise: 5e-3,
        },
        11,
    );
    compare("Time-lapse-like (Fig. 5f)", &tl, 25, 0.1);
}
