//! `ppcp` — command-line CP decomposition driver.
//!
//! ```text
//! ppcp --dataset <lowrank|collinearity|chemistry|coil|timelapse>
//!      --method  <dt|msdt|pp|nncp>          (default msdt)
//!      --rank    <R>                        (default 16)
//!      --sweeps  <max>                      (default 100)
//!      --tol     <Δ>                        (default 1e-5)
//!      --pp-tol  <ε>                        (default 0.1)
//!      --ranks   <P>                        (default 1; >1 runs the
//!                                            simulated distributed runtime)
//!      --seed    <u64>                      (default 42)
//!      --trace                              (print the fitness trace)
//! ```
//!
//! Examples:
//! ```text
//! cargo run --release --bin ppcp -- --dataset chemistry --method pp --rank 24
//! cargo run --release --bin ppcp -- --dataset collinearity --method msdt --ranks 8
//! ```

use parallel_pp::comm::Runtime;
use parallel_pp::core::par_als::par_cp_als;
use parallel_pp::core::par_pp::par_pp_cp_als;
use parallel_pp::core::{cp_als, nn_cp_als, pp_cp_als, AlsConfig, SweepKind};
use parallel_pp::datagen::chemistry::{density_fitting_tensor, ChemistryConfig};
use parallel_pp::datagen::coil::{coil_tensor, CoilConfig};
use parallel_pp::datagen::collinearity::{collinearity_tensor, CollinearityConfig};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::datagen::timelapse::{timelapse_tensor, TimelapseConfig};
use parallel_pp::dtree::TreePolicy;
use parallel_pp::grid::{DistTensor, ProcGrid};
use parallel_pp::tensor::DenseTensor;
use std::sync::Arc;

struct Args {
    dataset: String,
    method: String,
    rank: usize,
    sweeps: usize,
    tol: f64,
    pp_tol: f64,
    ranks: usize,
    seed: u64,
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: "lowrank".into(),
        method: "msdt".into(),
        rank: 16,
        sweeps: 100,
        tol: 1e-5,
        pp_tol: 0.1,
        ranks: 1,
        seed: 42,
        trace: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {key}"))
        };
        match key {
            "--dataset" => args.dataset = take(&mut i)?,
            "--method" => args.method = take(&mut i)?,
            "--rank" => args.rank = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--sweeps" => args.sweeps = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--tol" => args.tol = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--pp-tol" => args.pp_tol = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ranks" => args.ranks = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--trace" => args.trace = true,
            "--help" | "-h" => {
                println!("see module docs: ppcp --dataset <name> --method <dt|msdt|pp|nncp> ...");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn make_tensor(args: &Args) -> DenseTensor {
    match args.dataset.as_str() {
        "lowrank" => noisy_rank(&[60, 60, 60], args.rank.max(4), 0.05, args.seed),
        "collinearity" => {
            let cfg = CollinearityConfig {
                s: 80,
                r: args.rank.max(4),
                order: 3,
                lo: 0.6,
                hi: 0.8,
            };
            collinearity_tensor(&cfg, args.seed).0
        }
        "chemistry" => density_fitting_tensor(
            &ChemistryConfig {
                n_orb: 40,
                n_aux: 640,
                ..ChemistryConfig::default()
            },
            args.seed,
        ),
        "coil" => coil_tensor(&CoilConfig {
            size: 32,
            objects: 6,
            poses: 24,
        }),
        "timelapse" => timelapse_tensor(
            &TimelapseConfig {
                height: 48,
                width: 64,
                bands: 33,
                times: 9,
                materials: 12,
                noise: 5e-3,
            },
            args.seed,
        ),
        other => {
            eprintln!("unknown dataset '{other}' (lowrank|collinearity|chemistry|coil|timelapse)");
            std::process::exit(2);
        }
    }
}

fn grid_for(t: &DenseTensor, p: usize) -> ProcGrid {
    // Greedy near-balanced factorization of P over the tensor modes,
    // preferring to split the largest remaining mode extents.
    let n = t.order();
    let mut dims = vec![1usize; n];
    let mut rem = p;
    let mut f = 2;
    let mut factors = Vec::new();
    while rem > 1 {
        while rem % f == 0 {
            factors.push(f);
            rem /= f;
        }
        f += 1;
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        // Assign to the mode with the largest extent-per-current-split.
        let k = (0..n)
            .max_by(|&a, &b| {
                let ra = t.dim(a) / dims[a];
                let rb = t.dim(b) / dims[b];
                ra.cmp(&rb)
            })
            .unwrap();
        dims[k] *= f;
    }
    ProcGrid::new(dims)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let t = make_tensor(&args);
    println!(
        "dataset {} → tensor {} ({} elements), method {}, R={}, P={}",
        args.dataset,
        t.shape(),
        t.len(),
        args.method,
        args.rank,
        args.ranks
    );

    let cfg = AlsConfig::new(args.rank)
        .with_max_sweeps(args.sweeps)
        .with_tol(args.tol)
        .with_pp_tol(args.pp_tol)
        .with_seed(args.seed)
        .with_policy(match args.method.as_str() {
            "dt" => TreePolicy::Standard,
            _ => TreePolicy::MultiSweep,
        });

    let report = if args.ranks > 1 {
        let grid = grid_for(&t, args.ranks);
        println!("processor grid: {:?}", grid.dims());
        let t = Arc::new(t);
        let method = args.method.clone();
        let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
        let out = Runtime::new(args.ranks).run(move |ctx| {
            let local = DistTensor::from_global(&t2, &g2, ctx.rank());
            match method.as_str() {
                "pp" => par_pp_cp_als(ctx, &g2, &local, &c2).report,
                "nncp" => {
                    eprintln!("nncp is sequential-only; running dt instead");
                    par_cp_als(ctx, &g2, &local, &c2).report
                }
                _ => par_cp_als(ctx, &g2, &local, &c2).report,
            }
        });
        out.results.into_iter().next().unwrap()
    } else {
        match args.method.as_str() {
            "pp" => pp_cp_als(&t, &cfg).report,
            "nncp" => nn_cp_als(&t, &cfg).report,
            _ => cp_als(&t, &cfg).report,
        }
    };

    println!(
        "finished: {} sweeps ({} exact, {} PP-init, {} PP-approx), fitness {:.5}, {:.2}s total{}",
        report.sweeps.len(),
        report.count(SweepKind::Exact),
        report.count(SweepKind::PpInit),
        report.count(SweepKind::PpApprox),
        report.final_fitness,
        report.total_secs(),
        if report.converged {
            " (converged)"
        } else {
            " (sweep limit)"
        },
    );
    if args.trace {
        for s in &report.sweeps {
            println!(
                "  {:9} t={:8.3}s fitness={:.6}",
                s.kind.label(),
                s.cumulative_secs,
                s.fitness
            );
        }
    }
}
