//! `ppcp` — command-line CP decomposition driver.
//!
//! ```text
//! ppcp batch --manifest <path>             (multi-tenant batch mode;
//!      [--jobs <J>]                         J concurrent jobs, default 4)
//!      [--drivers <N>]                     (driver threads stepping tenants
//!                                           concurrently; default: all
//!                                           available cores; 1 = the
//!                                           deterministic golden path)
//!      [--cache-budget-mb <MB>]            (admission cache-memory budget;
//!                                           jobs queue rather than OOM)
//!      [--checkpoint-dir <DIR>]            (persist per-job checkpoints
//!                                           each sweep; re-running the same
//!                                           manifest resumes in-flight jobs
//!                                           bit-identically)
//!      [--stop-after-turns <N>]            (graceful drain: park in-flight
//!                                           jobs after N batch-wide sweeps)
//!      [--no-park]                         (let lookahead speculation ride
//!                                           across tenant turns)
//!      [--trace]                           (print the schedule trace)
//!      [--threads <T>]
//!
//! ppcp stream                              (online CP: the timelapse tensor
//!      [--method <dt|msdt|pp>]              grows along the time mode,
//!      [--rank <R>]                         `--arrive` slices at a time,
//!      [--height H] [--width W]             starting from `--initial-times`
//!      [--bands B] [--times T]              time points; each arrival's rows
//!      [--materials M] [--noise N]          are warm-started and the
//!      [--data-seed S]                      dimension-tree cache extended
//!      [--initial-times <I>]                in place)
//!      [--arrive <K>]
//!      [--sweeps-per-arrival <S>]
//!      [--update <incremental|recompute>]  (incremental cache extension or
//!                                           the full-recompute oracle;
//!                                           bit-identical either way)
//!      [--checkpoint <FILE>]               (park to FILE after each window;
//!                                           re-running resumes mid-stream —
//!                                           corrupt or foreign checkpoints
//!                                           are refused with exit 2)
//!      [--stop-after-arrivals <N>]         (graceful drain after N arrivals)
//!      [--tol D] [--pp-tol E] [--seed S] [--threads T]
//!      [--backend <rendezvous|p2p>] [--trace]
//!
//! ppcp [--version] [--help]
//!      --dataset <lowrank|collinearity|chemistry|coil|timelapse|
//!                 sparse-powerlaw|sparse-lowrank>
//!                                          (sparse datasets never densify:
//!                                           dt runs the direct CSF kernel,
//!                                           pp/msdt run the semi-sparse
//!                                           TTM chain; nncp is rejected
//!                                           and --ranks must be 1)
//!      --method  <dt|msdt|pp|nncp>          (default msdt)
//!      --rank    <R>                        (default 16)
//!      --sweeps  <max>                      (default 100)
//!      --tol     <Δ>                        (default 1e-5)
//!      --pp-tol  <ε>                        (default 0.1)
//!      --ranks   <P>                        (default 1; >1 runs the
//!                                            in-process distributed runtime)
//!      --backend <rendezvous|p2p>           (default rendezvous; collective
//!                                            implementation for --ranks > 1:
//!                                            the rendezvous oracle or the
//!                                            point-to-point channel
//!                                            transport — results are
//!                                            bit-identical either way)
//!      --threads <T>                        (default: PP_NUM_THREADS or
//!                                            hardware; pins the kernel
//!                                            thread pool per rank, scoped
//!                                            to this run via
//!                                            AlsConfig::threads)
//!      --no-lookahead                       (disable the cross-mode
//!                                            lookahead speculation;
//!                                            ablation — results are
//!                                            bit-identical either way)
//!      --seed    <u64>                      (default 42)
//!      --trace                              (print the fitness trace)
//! ```
//!
//! `--version` prints the crate version and exits 0; like `--help` it
//! short-circuits all other argument validation.
//!
//! Argument errors (unknown flags, unknown `--dataset`/`--method` values,
//! unparsable numbers, malformed manifests) exit with status 2. In batch
//! mode a failed *job* does not abort the batch; the exit status is 1 when
//! any job failed, 0 otherwise.
//!
//! Examples:
//! ```text
//! cargo run --release --bin ppcp -- --dataset chemistry --method pp --rank 24
//! cargo run --release --bin ppcp -- --dataset collinearity --method msdt --ranks 8
//! cargo run --release --bin ppcp -- batch --manifest jobs.txt --jobs 4 --trace
//! ```
//! See the README's "Serving" section for the manifest format.

use parallel_pp::comm::{Backend, Runtime};
use parallel_pp::core::par_als::par_cp_als;
use parallel_pp::core::par_pp::par_pp_cp_als;
use parallel_pp::core::{cp_als, nn_cp_als, pp_cp_als, AlsConfig, SweepKind};
use parallel_pp::datagen::chemistry::{density_fitting_tensor, ChemistryConfig};
use parallel_pp::datagen::coil::{coil_tensor, CoilConfig};
use parallel_pp::datagen::collinearity::{collinearity_tensor, CollinearityConfig};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::datagen::timelapse::{timelapse_tensor, TimelapseConfig};
use parallel_pp::dtree::{CacheUpdate, TreePolicy};
use parallel_pp::grid::{DistTensor, ProcGrid};
use parallel_pp::tensor::DenseTensor;
use std::sync::Arc;

#[derive(Debug)]
struct Args {
    dataset: String,
    method: String,
    rank: usize,
    sweeps: usize,
    tol: f64,
    pp_tol: f64,
    ranks: usize,
    backend: Backend,
    threads: Option<usize>,
    no_lookahead: bool,
    seed: u64,
    trace: bool,
    help: bool,
    version: bool,
}

const DATASETS: &[&str] = &[
    "lowrank",
    "collinearity",
    "chemistry",
    "coil",
    "timelapse",
    "sparse-powerlaw",
    "sparse-lowrank",
];
const METHODS: &[&str] = &["dt", "msdt", "pp", "nncp"];

/// Parse and validate a CLI argument vector (without the program name).
/// Unknown flags, unknown `--dataset`/`--method` values, and unparsable
/// numbers are all hard errors — no silent fallbacks.
fn parse_args_from(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        help: argv.iter().any(|a| a == "--help" || a == "-h"),
        version: argv.iter().any(|a| a == "--version" || a == "-V"),
        dataset: "lowrank".into(),
        method: "msdt".into(),
        rank: 16,
        sweeps: 100,
        tol: 1e-5,
        pp_tol: 0.1,
        ranks: 1,
        backend: Backend::default(),
        threads: None,
        no_lookahead: false,
        seed: 42,
        trace: false,
    };
    // `--help`/`--version` short-circuit all validation, per CLI
    // convention.
    if args.help || args.version {
        return Ok(args);
    }
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {key}"))
        };
        match key {
            "--dataset" => args.dataset = take(&mut i)?,
            "--method" => args.method = take(&mut i)?,
            "--rank" => {
                args.rank = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--sweeps" => {
                args.sweeps = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--tol" => {
                args.tol = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--pp-tol" => {
                args.pp_tol = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--ranks" => {
                args.ranks = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--backend" => args.backend = take(&mut i)?.parse()?,
            "--threads" => {
                let t: usize = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(t);
            }
            "--seed" => {
                args.seed = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--no-lookahead" => args.no_lookahead = true,
            "--trace" => args.trace = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if !DATASETS.contains(&args.dataset.as_str()) {
        return Err(format!(
            "unknown dataset '{}' (expected one of {})",
            args.dataset,
            DATASETS.join("|")
        ));
    }
    if !METHODS.contains(&args.method.as_str()) {
        return Err(format!(
            "unknown method '{}' (expected one of {})",
            args.method,
            METHODS.join("|")
        ));
    }
    if args.dataset.starts_with("sparse-") {
        if args.method == "nncp" {
            return Err(format!(
                "dataset '{}' supports --method dt|pp|msdt (nncp's row-wise HALS \
                 needs the dense residual and cannot run on sparse inputs)",
                args.dataset
            ));
        }
        if args.ranks > 1 {
            return Err(format!(
                "dataset '{}' is sequential-only (--ranks 1)",
                args.dataset
            ));
        }
    }
    Ok(args)
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_args_from(&argv)
}

/// Arguments of the `batch` subcommand.
#[derive(Debug)]
struct BatchArgs {
    manifest: String,
    jobs: usize,
    drivers: usize,
    cache_budget_mb: Option<usize>,
    checkpoint_dir: Option<String>,
    stop_after_turns: Option<usize>,
    park: bool,
    trace: bool,
    threads: Option<usize>,
    help: bool,
    version: bool,
}

/// Default driver count: every available core (work-conserving serving).
fn default_drivers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parse `ppcp batch ...` arguments (everything after the subcommand).
/// Like the main mode, `--help`/`--version` short-circuit all other
/// validation.
fn parse_batch_args_from(argv: &[String]) -> Result<BatchArgs, String> {
    let mut args = BatchArgs {
        manifest: String::new(),
        jobs: 4,
        drivers: default_drivers(),
        cache_budget_mb: None,
        checkpoint_dir: None,
        stop_after_turns: None,
        park: true,
        trace: false,
        threads: None,
        help: argv.iter().any(|a| a == "--help" || a == "-h"),
        version: argv.iter().any(|a| a == "--version" || a == "-V"),
    };
    if args.help || args.version {
        return Ok(args);
    }
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {key}"))
        };
        match key {
            "--manifest" => args.manifest = take(&mut i)?,
            "--jobs" => {
                args.jobs = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--drivers" => {
                args.drivers = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?;
                if args.drivers == 0 {
                    return Err("--drivers must be at least 1".into());
                }
            }
            "--cache-budget-mb" => {
                let mb: usize = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?;
                if mb == 0 {
                    return Err("--cache-budget-mb must be at least 1".into());
                }
                args.cache_budget_mb = Some(mb);
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(take(&mut i)?),
            "--stop-after-turns" => {
                args.stop_after_turns = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("invalid value for {key}: {e}"))?,
                );
            }
            "--threads" => {
                let t: usize = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(t);
            }
            "--no-park" => args.park = false,
            "--trace" => args.trace = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if args.manifest.is_empty() {
        return Err("batch mode requires --manifest <path>".into());
    }
    Ok(args)
}

/// Run `ppcp batch`: parse the manifest, schedule the jobs, report.
/// Returns the process exit code.
fn run_batch_mode(args: &BatchArgs) -> i32 {
    let text = match std::fs::read_to_string(&args.manifest) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read manifest {}: {e}", args.manifest);
            return 2;
        }
    };
    let jobs = match parallel_pp::serve::parse_manifest(&text) {
        Ok(j) if !j.is_empty() => j,
        Ok(_) => {
            eprintln!("error: manifest {} declares no jobs", args.manifest);
            return 2;
        }
        Err(e) => {
            eprintln!("error: {}: {e}", args.manifest);
            return 2;
        }
    };
    // Batch-wide width pin; per-job `threads=` pins nest inside per turn
    // (single-driver only — concurrent drivers drop per-job pins).
    let _threads = args.threads.map(rayon::scoped_num_threads);
    println!(
        "batch: {} jobs, window {}, drivers {}, park={}, threads={}{}{}",
        jobs.len(),
        args.jobs,
        args.drivers,
        args.park,
        args.threads.unwrap_or_else(rayon::current_num_threads),
        args.cache_budget_mb
            .map(|mb| format!(", cache-budget {mb} MB"))
            .unwrap_or_default(),
        args.checkpoint_dir
            .as_deref()
            .map(|d| format!(", checkpoints in {d}"))
            .unwrap_or_default(),
    );
    let mut cfg = parallel_pp::serve::ServeConfig::new(args.jobs)
        .with_park(args.park)
        .with_drivers(args.drivers);
    if let Some(mb) = args.cache_budget_mb {
        // MB of f64 cache elements (8 bytes each).
        cfg = cfg.with_cache_budget_elems(mb * 1024 * 1024 / 8);
    }
    if let Some(dir) = &args.checkpoint_dir {
        cfg = cfg.with_checkpoint_dir(dir);
    }
    if let Some(turns) = args.stop_after_turns {
        cfg = cfg.with_stop_after_turns(turns);
    }
    let report = match parallel_pp::serve::run_batch(&jobs, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    for (spec, res) in jobs.iter().zip(report.jobs.iter()) {
        match &res.status {
            parallel_pp::serve::JobStatus::Completed { converged } => {
                let out = res.output.as_ref().unwrap();
                println!(
                    "  {:<12} {:<5} ok: {} sweeps ({} exact, {} PP-init, {} PP-approx), \
                     fitness {:.5}, {:.3}s{}",
                    res.name,
                    spec.method.label(),
                    out.report.sweeps.len(),
                    out.report.count(SweepKind::Exact),
                    out.report.count(SweepKind::PpInit),
                    out.report.count(SweepKind::PpApprox),
                    out.report.final_fitness,
                    res.secs,
                    if *converged {
                        " (converged)"
                    } else {
                        " (sweep limit)"
                    },
                );
            }
            parallel_pp::serve::JobStatus::Failed { error } => {
                println!(
                    "  {:<12} {:<5} FAILED: {error}",
                    res.name,
                    spec.method.label()
                );
            }
            parallel_pp::serve::JobStatus::Parked => {
                println!(
                    "  {:<12} {:<5} parked{}",
                    res.name,
                    spec.method.label(),
                    if args.checkpoint_dir.is_some() {
                        " (resumable from checkpoint dir)"
                    } else {
                        ""
                    },
                );
            }
        }
    }
    println!(
        "batch finished: {} completed, {} failed, {} parked, {:.3}s total ({:.2} jobs/s)",
        report.completed(),
        report.failed(),
        report.parked(),
        report.total_secs,
        report.jobs_per_sec(),
    );
    if args.trace {
        for e in &report.schedule {
            println!(
                "  turn {:4}  drv {}  job {} ({})  sweep {:3}  {}",
                e.turn,
                e.driver,
                e.job,
                report.jobs[e.job].name,
                e.sweep,
                e.kind.label()
            );
        }
    }
    // A drained (parked) batch is a successful graceful stop, not a
    // failure: only failed jobs flip the exit code.
    i32::from(report.failed() > 0)
}

/// Arguments of the `stream` subcommand.
#[derive(Debug)]
struct StreamArgs {
    method: String,
    rank: usize,
    height: usize,
    width: usize,
    bands: usize,
    times: usize,
    materials: usize,
    noise: f64,
    data_seed: u64,
    initial_times: usize,
    arrive: usize,
    sweeps_per_arrival: usize,
    update: CacheUpdate,
    tol: f64,
    pp_tol: f64,
    seed: u64,
    threads: Option<usize>,
    backend: Backend,
    checkpoint: Option<String>,
    stop_after_arrivals: Option<usize>,
    trace: bool,
    help: bool,
    version: bool,
}

/// Parse `ppcp stream ...` arguments (everything after the subcommand).
fn parse_stream_args_from(argv: &[String]) -> Result<StreamArgs, String> {
    let mut args = StreamArgs {
        method: "msdt".into(),
        rank: 8,
        height: 24,
        width: 24,
        bands: 16,
        times: 9,
        materials: 6,
        noise: 5e-3,
        data_seed: 42,
        initial_times: 3,
        arrive: 2,
        sweeps_per_arrival: 5,
        update: CacheUpdate::Incremental,
        tol: 1e-5,
        pp_tol: 0.1,
        seed: 42,
        threads: None,
        backend: Backend::default(),
        checkpoint: None,
        stop_after_arrivals: None,
        trace: false,
        help: argv.iter().any(|a| a == "--help" || a == "-h"),
        version: argv.iter().any(|a| a == "--version" || a == "-V"),
    };
    if args.help || args.version {
        return Ok(args);
    }
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {key}"))
        };
        let num = |i: &mut usize| -> Result<usize, String> {
            *i += 1;
            argv.get(*i)
                .ok_or_else(|| format!("missing value for {key}"))?
                .parse()
                .map_err(|e| format!("invalid value for {key}: {e}"))
        };
        match key {
            "--method" => args.method = take(&mut i)?,
            "--rank" => args.rank = num(&mut i)?,
            "--height" => args.height = num(&mut i)?,
            "--width" => args.width = num(&mut i)?,
            "--bands" => args.bands = num(&mut i)?,
            "--times" => args.times = num(&mut i)?,
            "--materials" => args.materials = num(&mut i)?,
            "--noise" => {
                args.noise = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--data-seed" => {
                args.data_seed = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--initial-times" => args.initial_times = num(&mut i)?,
            "--arrive" => args.arrive = num(&mut i)?,
            "--sweeps-per-arrival" => {
                args.sweeps_per_arrival = num(&mut i)?;
                if args.sweeps_per_arrival == 0 {
                    return Err("--sweeps-per-arrival must be at least 1".into());
                }
            }
            "--update" => {
                args.update = match take(&mut i)?.as_str() {
                    "incremental" => CacheUpdate::Incremental,
                    "recompute" => CacheUpdate::Recompute,
                    other => {
                        return Err(format!(
                            "unknown update '{other}' (expected incremental|recompute)"
                        ))
                    }
                }
            }
            "--tol" => {
                args.tol = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--pp-tol" => {
                args.pp_tol = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--seed" => {
                args.seed = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("invalid value for {key}: {e}"))?
            }
            "--threads" => {
                let t = num(&mut i)?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(t);
            }
            "--backend" => args.backend = take(&mut i)?.parse()?,
            "--checkpoint" => args.checkpoint = Some(take(&mut i)?),
            "--stop-after-arrivals" => args.stop_after_arrivals = Some(num(&mut i)?),
            "--trace" => args.trace = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    match args.method.as_str() {
        "dt" | "msdt" | "pp" => {}
        "nncp" => {
            return Err(
                "streaming supports --method dt|msdt|pp (nncp's row-wise HALS has no \
                 warm-start path for arriving rows)"
                    .into(),
            )
        }
        other => {
            return Err(format!(
                "unknown method '{other}' (expected one of dt|msdt|pp)"
            ))
        }
    }
    if args.rank == 0 {
        return Err("--rank must be at least 1".into());
    }
    Ok(args)
}

/// The configuration fingerprint a stream checkpoint is tagged with:
/// resuming under different shape/schedule/solver flags is refused.
fn stream_tag(args: &StreamArgs) -> u64 {
    parallel_pp::core::checkpoint::fnv1a(
        format!(
            "stream|{}|r{}|{}x{}x{}x{}|m{}|n{}|ds{}|i{}|a{}|spa{}|{:?}|tol{}|pp{}|s{}",
            args.method,
            args.rank,
            args.height,
            args.width,
            args.bands,
            args.times,
            args.materials,
            args.noise,
            args.data_seed,
            args.initial_times,
            args.arrive,
            args.sweeps_per_arrival,
            args.update,
            args.tol,
            args.pp_tol,
            args.seed,
        )
        .as_bytes(),
    )
}

/// Run `ppcp stream`: an online CP decomposition of the timelapse tensor,
/// slices arriving along the time mode. Returns the process exit code.
fn run_stream_mode(args: &StreamArgs) -> i32 {
    use parallel_pp::core::{SessionKind, StreamingSession};
    use parallel_pp::datagen::timelapse::{TimelapseStream, TIME_MODE};

    let tcfg = TimelapseConfig {
        height: args.height,
        width: args.width,
        bands: args.bands,
        times: args.times,
        materials: args.materials,
        noise: args.noise,
    };
    let feed = {
        let _gen = args.threads.map(rayon::scoped_num_threads);
        match TimelapseStream::new(&tcfg, args.data_seed, args.initial_times, args.arrive) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    };
    let mut cfg = AlsConfig::new(args.rank)
        .with_tol(args.tol)
        .with_pp_tol(args.pp_tol)
        .with_seed(args.seed)
        .with_policy(match args.method.as_str() {
            "dt" => TreePolicy::Standard,
            _ => TreePolicy::MultiSweep,
        });
    if let Some(t) = args.threads {
        cfg = cfg.with_threads(t);
    }
    let kind = if args.method == "pp" {
        SessionKind::Pp
    } else {
        SessionKind::Exact
    };
    let tag = stream_tag(args);
    let ckpt = args.checkpoint.as_ref().map(std::path::Path::new);

    let mut session = match ckpt.filter(|p| p.exists()) {
        Some(path) => {
            match StreamingSession::resume_from_disk(path, |extent| feed.prefix(extent)) {
                Ok((s, t)) if t == tag => {
                    println!(
                        "resumed {} at extent {} ({} arrivals, {} sweeps done)",
                        path.display(),
                        s.extent(),
                        s.arrivals_done(),
                        s.sweeps_done(),
                    );
                    s
                }
                Ok(_) => {
                    eprintln!(
                        "error: checkpoint {} was written by a different configuration",
                        path.display()
                    );
                    return 2;
                }
                Err(e) => {
                    eprintln!("error: checkpoint {}: {e}", path.display());
                    return 2;
                }
            }
        }
        None => StreamingSession::new(
            &feed.initial(),
            &cfg,
            kind,
            TIME_MODE,
            args.sweeps_per_arrival,
            args.update,
        ),
    };
    println!(
        "stream: timelapse {}x{}x{}x{} → {} initial time points + {} arrivals of {}, \
         method {}, R={}, {} sweeps/arrival, update {:?}, backend {}, threads={}",
        args.height,
        args.width,
        args.bands,
        args.times,
        args.initial_times,
        feed.n_arrivals(),
        args.arrive,
        args.method,
        args.rank,
        args.sweeps_per_arrival,
        args.update,
        args.backend,
        args.threads.unwrap_or_else(rayon::current_num_threads),
    );

    let mut parked = false;
    loop {
        session.run_window();
        if let Some(path) = ckpt {
            if let Err(e) = session.park_to_disk(path, tag) {
                eprintln!("error: checkpoint {}: {e}", path.display());
                return 1;
            }
        }
        println!(
            "  window {:2}: extent {:3}, {:3} sweeps, fitness {:.5}",
            session.arrivals_done(),
            session.extent(),
            session.sweeps_done(),
            session.last_fitness(),
        );
        let done = session.arrivals_done();
        if done >= feed.n_arrivals() {
            break;
        }
        if args.stop_after_arrivals.is_some_and(|n| done >= n) {
            parked = true;
            break;
        }
        session.arrive(&feed.slice(done));
    }
    if parked {
        println!(
            "drained after {} arrivals{}",
            session.arrivals_done(),
            if args.checkpoint.is_some() {
                " (resumable from checkpoint)"
            } else {
                ""
            },
        );
        return 0;
    }
    let out = session.finish();
    let report = out.report;
    println!(
        "finished: {} sweeps ({} exact, {} PP-init, {} PP-approx), fitness {:.5}, {:.2}s total",
        report.sweeps.len(),
        report.count(SweepKind::Exact),
        report.count(SweepKind::PpInit),
        report.count(SweepKind::PpApprox),
        report.final_fitness,
        report.total_secs(),
    );
    if args.trace {
        for s in &report.sweeps {
            println!(
                "  {:9} t={:8.3}s fitness={:.6}",
                s.kind.label(),
                s.cumulative_secs,
                s.fitness
            );
        }
    }
    if let Some(path) = ckpt {
        // The run is complete; a stale checkpoint would otherwise resume
        // a finished session on the next invocation.
        let _ = std::fs::remove_file(path);
    }
    0
}

fn make_tensor(args: &Args) -> DenseTensor {
    match args.dataset.as_str() {
        "lowrank" => noisy_rank(&[60, 60, 60], args.rank.max(4), 0.05, args.seed),
        "collinearity" => {
            let cfg = CollinearityConfig {
                s: 80,
                r: args.rank.max(4),
                order: 3,
                lo: 0.6,
                hi: 0.8,
            };
            collinearity_tensor(&cfg, args.seed).0
        }
        "chemistry" => density_fitting_tensor(
            &ChemistryConfig {
                n_orb: 40,
                n_aux: 640,
                ..ChemistryConfig::default()
            },
            args.seed,
        ),
        "coil" => coil_tensor(&CoilConfig {
            size: 32,
            objects: 6,
            poses: 24,
        }),
        "timelapse" => timelapse_tensor(
            &TimelapseConfig {
                height: 48,
                width: 64,
                bands: 33,
                times: 9,
                materials: 12,
                noise: 5e-3,
            },
            args.seed,
        ),
        // Parse-time validation rejects unknown names and `main` routes
        // sparse datasets through `run_sparse` before reaching here.
        other => unreachable!("dataset '{other}' has no dense generator"),
    }
}

/// Generate the sparse CLI presets: a power-law user×item×time sample and
/// a planted low-rank CP model at 0.5% density.
fn make_sparse_tensor(args: &Args) -> parallel_pp::tensor::sparse::SparseTensor {
    use parallel_pp::datagen::sparse::{powerlaw_sparse, sparse_lowrank};
    match args.dataset.as_str() {
        "sparse-powerlaw" => powerlaw_sparse(&[512, 256, 64], 100_000, 2.0, args.seed),
        _ => sparse_lowrank(&[256, 256, 64], args.rank.max(4), 0.005, args.seed).0,
    }
}

/// The sparse single-run driver. The input never densifies: `dt` routes
/// every MTTKRP through the pool-parallel CSF kernel over the standard
/// tree; `pp` and `msdt` run the semi-sparse TTM chain over the
/// multi-sweep tree.
fn run_sparse(args: &Args) {
    use parallel_pp::core::{AlsSession, SessionKind};
    let sp = {
        let _gen = args.threads.map(rayon::scoped_num_threads);
        make_sparse_tensor(args)
    };
    let dims: Vec<String> = sp.dims().iter().map(|d| d.to_string()).collect();
    println!(
        "dataset {} → sparse tensor {} ({} nnz, density {:.4}%), method {}, R={}, threads={}",
        args.dataset,
        dims.join("x"),
        sp.nnz(),
        sp.density() * 100.0,
        args.method,
        args.rank,
        args.threads.unwrap_or_else(rayon::current_num_threads),
    );
    let mut cfg = AlsConfig::new(args.rank)
        .with_max_sweeps(args.sweeps)
        .with_tol(args.tol)
        .with_pp_tol(args.pp_tol)
        .with_seed(args.seed)
        .with_lookahead(!args.no_lookahead)
        .with_policy(match args.method.as_str() {
            "dt" => TreePolicy::Standard,
            _ => TreePolicy::MultiSweep,
        });
    if let Some(t) = args.threads {
        cfg = cfg.with_threads(t);
    }
    let kind = match args.method.as_str() {
        "pp" => SessionKind::Pp,
        _ => SessionKind::Exact,
    };
    let out = AlsSession::new_sparse(&sp, &cfg, kind).run();
    let report = out.report;
    println!(
        "finished: {} sweeps ({} exact, {} PP-init, {} PP-approx), fitness {:.5}, {:.2}s total{}",
        report.sweeps.len(),
        report.count(SweepKind::Exact),
        report.count(SweepKind::PpInit),
        report.count(SweepKind::PpApprox),
        report.final_fitness,
        report.total_secs(),
        if report.converged {
            " (converged)"
        } else {
            " (sweep limit)"
        },
    );
    print_sparse_counters(&report.stats);
    if args.trace {
        for s in &report.sweeps {
            println!(
                "  {:9} t={:8.3}s fitness={:.6}",
                s.kind.label(),
                s.cumulative_secs,
                s.fitness
            );
        }
    }
}

/// The sparse kernel counter lines: the direct CSF MTTKRP (dt) and the
/// semi-sparse TTM/TTV chain (pp/msdt) — whichever actually ran.
fn print_sparse_counters(stats: &parallel_pp::dtree::KernelStats) {
    if stats.sparse_mttkrp_flops > 0 {
        println!(
            "sparse MTTKRP (CSF): {:.2} Gflop, {} fibers visited",
            stats.sparse_mttkrp_flops as f64 / 1e9,
            stats.sparse_fibers_visited,
        );
    }
    if stats.semisparse_ttm_flops > 0 || stats.semisparse_ttv_flops > 0 {
        println!(
            "semi-sparse chain: {:.2} Gflop TTM + {:.2} Gflop TTV, {} entries visited",
            stats.semisparse_ttm_flops as f64 / 1e9,
            stats.semisparse_ttv_flops as f64 / 1e9,
            stats.semisparse_entries_visited,
        );
    }
}

fn grid_for(t: &DenseTensor, p: usize) -> ProcGrid {
    // Greedy near-balanced factorization of P over the tensor modes,
    // preferring to split the largest remaining mode extents.
    let n = t.order();
    let mut dims = vec![1usize; n];
    let mut rem = p;
    let mut f = 2;
    let mut factors = Vec::new();
    while rem > 1 {
        while rem.is_multiple_of(f) {
            factors.push(f);
            rem /= f;
        }
        f += 1;
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        // Assign to the mode with the largest extent-per-current-split.
        let k = (0..n)
            .max_by(|&a, &b| {
                let ra = t.dim(a) / dims[a];
                let rb = t.dim(b) / dims[b];
                ra.cmp(&rb)
            })
            .unwrap();
        dims[k] *= f;
    }
    ProcGrid::new(dims)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "batch") {
        let bargs = match parse_batch_args_from(&argv[1..]) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        if bargs.version {
            println!("ppcp {}", env!("CARGO_PKG_VERSION"));
            return;
        }
        if bargs.help {
            println!(
                "ppcp batch --manifest <path> [--jobs J] [--drivers N] [--cache-budget-mb MB]\n\
                 \x20          [--checkpoint-dir DIR] [--stop-after-turns N] [--no-park]\n\
                 \x20          [--trace] [--threads T]\n\
                 see the pp-serve::job module docs for the manifest format"
            );
            return;
        }
        std::process::exit(run_batch_mode(&bargs));
    }
    if argv.first().is_some_and(|a| a == "stream") {
        let sargs = match parse_stream_args_from(&argv[1..]) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        if sargs.version {
            println!("ppcp {}", env!("CARGO_PKG_VERSION"));
            return;
        }
        if sargs.help {
            println!(
                "ppcp stream [--method dt|msdt|pp] [--rank R] [--update incremental|recompute]\n\
                 \x20           [--height H] [--width W] [--bands B] [--times T] [--materials M]\n\
                 \x20           [--noise N] [--data-seed S] [--initial-times I] [--arrive K]\n\
                 \x20           [--sweeps-per-arrival S] [--checkpoint FILE]\n\
                 \x20           [--stop-after-arrivals N] [--tol D] [--pp-tol E] [--seed S]\n\
                 \x20           [--threads T] [--backend rendezvous|p2p] [--trace]\n\
                 online CP of the timelapse tensor; slices arrive along the time mode"
            );
            return;
        }
        std::process::exit(run_stream_mode(&sargs));
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.version {
        println!("ppcp {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    if args.help {
        println!(
            "see module docs: ppcp [--version] --dataset <name> --method <dt|msdt|pp|nncp> ...\n\
             \x20                 ppcp batch --manifest <path> [--jobs J] [--no-park] [--trace]"
        );
        return;
    }
    if args.dataset.starts_with("sparse-") {
        run_sparse(&args);
        return;
    }
    // `--threads` routes through `AlsConfig::threads`: the pin is scoped
    // to each driver run (per rank) and released when it returns, so one
    // run cannot leak a global width into later in-process runs. Dataset
    // generation runs at the default width, so pin it here briefly too.
    let t = {
        let _gen = args.threads.map(rayon::scoped_num_threads);
        make_tensor(&args)
    };
    println!(
        "dataset {} → tensor {} ({} elements), method {}, R={}, P={}, threads={}, lookahead={}",
        args.dataset,
        t.shape(),
        t.len(),
        args.method,
        args.rank,
        args.ranks,
        args.threads.unwrap_or_else(rayon::current_num_threads),
        !args.no_lookahead,
    );

    let mut cfg = AlsConfig::new(args.rank)
        .with_max_sweeps(args.sweeps)
        .with_tol(args.tol)
        .with_pp_tol(args.pp_tol)
        .with_seed(args.seed)
        .with_lookahead(!args.no_lookahead)
        .with_policy(match args.method.as_str() {
            "dt" => TreePolicy::Standard,
            _ => TreePolicy::MultiSweep,
        });
    if let Some(t) = args.threads {
        cfg = cfg.with_threads(t);
    }

    let report = if args.ranks > 1 {
        let grid = grid_for(&t, args.ranks);
        println!(
            "processor grid: {:?}, backend: {}",
            grid.dims(),
            args.backend
        );
        let t = Arc::new(t);
        let method = args.method.clone();
        let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
        let out = Runtime::with_backend(args.ranks, args.backend).run(move |ctx| {
            let local = DistTensor::from_global(&t2, &g2, ctx.rank());
            match method.as_str() {
                "pp" => par_pp_cp_als(ctx, &g2, &local, &c2).report,
                "nncp" => {
                    eprintln!("nncp is sequential-only; running dt instead");
                    par_cp_als(ctx, &g2, &local, &c2).report
                }
                _ => par_cp_als(ctx, &g2, &local, &c2).report,
            }
        });
        out.results.into_iter().next().unwrap()
    } else {
        match args.method.as_str() {
            "pp" => pp_cp_als(&t, &cfg).report,
            "nncp" => nn_cp_als(&t, &cfg).report,
            _ => cp_als(&t, &cfg).report,
        }
    };

    println!(
        "finished: {} sweeps ({} exact, {} PP-init, {} PP-approx), fitness {:.5}, {:.2}s total{}",
        report.sweeps.len(),
        report.count(SweepKind::Exact),
        report.count(SweepKind::PpInit),
        report.count(SweepKind::PpApprox),
        report.final_fitness,
        report.total_secs(),
        if report.converged {
            " (converged)"
        } else {
            " (sweep limit)"
        },
    );
    if !args.no_lookahead {
        println!(
            "lookahead: {} speculative TTMs launched, {} hit, {} wasted",
            report.stats.spec_launched, report.stats.spec_hits, report.stats.spec_wasted,
        );
    }
    println!(
        "packed GEMM (sync engine TTMs): {:.2} Gflop, {} fixed-n / {} generic calls",
        report.stats.gemm_packed_flops as f64 / 1e9,
        report.stats.gemm_fixed_n_calls,
        report.stats.gemm_generic_calls,
    );
    print_sparse_counters(&report.stats);
    if args.trace {
        for s in &report.sweeps {
            println!(
                "  {:9} t={:8.3}s fitness={:.6}",
                s.kind.label(),
                s.cumulative_secs,
                s.fitness
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn batch_args_parse() {
        let a = parse_batch_args_from(&argv(&["--manifest", "jobs.txt"])).unwrap();
        assert_eq!(a.manifest, "jobs.txt");
        assert_eq!(a.jobs, 4, "default window");
        assert!(a.park);
        assert!(!a.trace);
        let a = parse_batch_args_from(&argv(&[
            "--manifest",
            "m.txt",
            "--jobs",
            "2",
            "--no-park",
            "--trace",
            "--threads",
            "3",
        ]))
        .unwrap();
        assert_eq!(a.jobs, 2);
        assert!(!a.park);
        assert!(a.trace);
        assert_eq!(a.threads, Some(3));
    }

    #[test]
    fn batch_scheduler_flags_parse() {
        let a = parse_batch_args_from(&argv(&["--manifest", "m.txt"])).unwrap();
        assert_eq!(a.drivers, default_drivers(), "default is all cores");
        assert_eq!(a.cache_budget_mb, None);
        assert_eq!(a.checkpoint_dir, None);
        assert_eq!(a.stop_after_turns, None);
        let a = parse_batch_args_from(&argv(&[
            "--manifest",
            "m.txt",
            "--drivers",
            "4",
            "--cache-budget-mb",
            "64",
            "--checkpoint-dir",
            "/tmp/ckpt",
            "--stop-after-turns",
            "12",
        ]))
        .unwrap();
        assert_eq!(a.drivers, 4);
        assert_eq!(a.cache_budget_mb, Some(64));
        assert_eq!(a.checkpoint_dir.as_deref(), Some("/tmp/ckpt"));
        assert_eq!(a.stop_after_turns, Some(12));
    }

    #[test]
    fn zero_and_garbage_scheduler_flags_are_rejected() {
        // Exit-2 paths: zero or unparsable values must be argument errors,
        // never a panic inside the scheduler.
        for (flags, needle) in [
            (vec!["--drivers", "0"], "--drivers must be at least 1"),
            (vec!["--drivers", "many"], "invalid value for --drivers"),
            (
                vec!["--cache-budget-mb", "0"],
                "--cache-budget-mb must be at least 1",
            ),
            (
                vec!["--cache-budget-mb", "big"],
                "invalid value for --cache-budget-mb",
            ),
            (
                vec!["--stop-after-turns", "soon"],
                "invalid value for --stop-after-turns",
            ),
        ] {
            let mut full = vec!["--manifest", "m.txt"];
            full.extend(flags.iter());
            let err = parse_batch_args_from(&argv(&full)).unwrap_err();
            assert!(err.contains(needle), "{flags:?}: {err}");
        }
    }

    #[test]
    fn batch_help_and_version_short_circuit() {
        // Like the main mode: `--help`/`--version` win over anything else,
        // including a missing manifest and invalid flags.
        for argv_case in [
            vec!["--help"],
            vec!["-h"],
            vec!["--version"],
            vec!["-V"],
            vec!["--help", "--frobnicate"],
            vec!["--version", "--jobs", "abc"],
        ] {
            let a = parse_batch_args_from(&argv(&argv_case)).unwrap();
            assert!(a.help || a.version, "{argv_case:?}");
        }
    }

    #[test]
    fn batch_args_rejected() {
        assert!(parse_batch_args_from(&argv(&[]))
            .unwrap_err()
            .contains("requires --manifest"));
        assert!(
            parse_batch_args_from(&argv(&["--manifest", "m", "--jobs", "0"]))
                .unwrap_err()
                .contains("--jobs must be at least 1")
        );
        assert!(
            parse_batch_args_from(&argv(&["--manifest", "m", "--frobnicate"]))
                .unwrap_err()
                .contains("unknown flag")
        );
        assert!(parse_batch_args_from(&argv(&["--manifest"]))
            .unwrap_err()
            .contains("missing value"));
    }

    #[test]
    fn stream_args_parse() {
        let a = parse_stream_args_from(&argv(&[])).unwrap();
        assert_eq!(a.method, "msdt");
        assert_eq!(a.rank, 8);
        assert_eq!(a.initial_times, 3);
        assert_eq!(a.arrive, 2);
        assert_eq!(a.sweeps_per_arrival, 5);
        assert_eq!(a.update, CacheUpdate::Incremental);
        assert!(a.checkpoint.is_none() && a.stop_after_arrivals.is_none());

        let a = parse_stream_args_from(&argv(&[
            "--method",
            "pp",
            "--rank",
            "6",
            "--height",
            "12",
            "--width",
            "10",
            "--bands",
            "8",
            "--times",
            "11",
            "--materials",
            "3",
            "--noise",
            "1e-3",
            "--data-seed",
            "7",
            "--initial-times",
            "5",
            "--arrive",
            "3",
            "--sweeps-per-arrival",
            "4",
            "--update",
            "recompute",
            "--checkpoint",
            "s.ppck",
            "--stop-after-arrivals",
            "1",
            "--backend",
            "p2p",
            "--threads",
            "2",
            "--trace",
        ]))
        .unwrap();
        assert_eq!(a.method, "pp");
        assert_eq!(a.rank, 6);
        assert_eq!(
            (a.height, a.width, a.bands, a.times, a.materials),
            (12, 10, 8, 11, 3)
        );
        assert_eq!(a.noise, 1e-3);
        assert_eq!(a.data_seed, 7);
        assert_eq!((a.initial_times, a.arrive, a.sweeps_per_arrival), (5, 3, 4));
        assert_eq!(a.update, CacheUpdate::Recompute);
        assert_eq!(a.checkpoint.as_deref(), Some("s.ppck"));
        assert_eq!(a.stop_after_arrivals, Some(1));
        assert_eq!(a.backend, Backend::P2p);
        assert_eq!(a.threads, Some(2));
        assert!(a.trace);
    }

    #[test]
    fn stream_args_rejected() {
        assert!(parse_stream_args_from(&argv(&["--method", "nncp"]))
            .unwrap_err()
            .contains("dt|msdt|pp"));
        assert!(parse_stream_args_from(&argv(&["--method", "gradient"]))
            .unwrap_err()
            .contains("unknown method"));
        assert!(
            parse_stream_args_from(&argv(&["--sweeps-per-arrival", "0"]))
                .unwrap_err()
                .contains("at least 1")
        );
        assert!(parse_stream_args_from(&argv(&["--update", "lazy"]))
            .unwrap_err()
            .contains("incremental|recompute"));
        assert!(parse_stream_args_from(&argv(&["--rank", "0"]))
            .unwrap_err()
            .contains("--rank must be at least 1"));
        assert!(parse_stream_args_from(&argv(&["--backend", "mpi"])).is_err());
        assert!(parse_stream_args_from(&argv(&["--arrive"]))
            .unwrap_err()
            .contains("missing value"));
        assert!(parse_stream_args_from(&argv(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn stream_help_and_version_short_circuit() {
        for argv_case in [
            vec!["--help"],
            vec!["--version"],
            vec!["--method", "nncp", "--help"],
            vec!["--sweeps-per-arrival", "0", "-V"],
        ] {
            let a = parse_stream_args_from(&argv(&argv_case)).unwrap();
            assert!(a.help || a.version, "{argv_case:?}");
        }
    }

    #[test]
    fn stream_tag_separates_configurations() {
        let a = parse_stream_args_from(&argv(&[])).unwrap();
        let b = parse_stream_args_from(&argv(&["--rank", "9"])).unwrap();
        let c = parse_stream_args_from(&argv(&["--update", "recompute"])).unwrap();
        assert_ne!(stream_tag(&a), stream_tag(&b));
        assert_ne!(stream_tag(&a), stream_tag(&c));
        assert_eq!(
            stream_tag(&a),
            stream_tag(&parse_stream_args_from(&argv(&[])).unwrap())
        );
    }

    #[test]
    fn defaults_parse() {
        let a = parse_args_from(&argv(&[])).unwrap();
        assert_eq!(a.dataset, "lowrank");
        assert_eq!(a.method, "msdt");
        assert_eq!(a.rank, 16);
        assert_eq!(a.threads, None);
        assert!(!a.no_lookahead, "lookahead is on by default");
    }

    #[test]
    fn no_lookahead_flag_parses() {
        let a = parse_args_from(&argv(&["--no-lookahead"])).unwrap();
        assert!(a.no_lookahead);
    }

    #[test]
    fn threads_flag_routes_into_config_not_a_global() {
        // The CLI must not leave a process-global width behind: `--threads`
        // becomes `AlsConfig::threads`, whose scoped guard is released when
        // each run returns.
        let a = parse_args_from(&argv(&["--threads", "3"])).unwrap();
        let before = rayon::current_num_threads();
        let cfg = AlsConfig::new(a.rank).with_threads(a.threads.unwrap());
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(
            rayon::current_num_threads(),
            before,
            "parsing/config-building must not change the pool width"
        );
    }

    #[test]
    fn full_flag_set_parses() {
        let a = parse_args_from(&argv(&[
            "--dataset",
            "chemistry",
            "--method",
            "pp",
            "--rank",
            "24",
            "--sweeps",
            "50",
            "--tol",
            "1e-4",
            "--pp-tol",
            "0.2",
            "--ranks",
            "4",
            "--backend",
            "p2p",
            "--threads",
            "8",
            "--no-lookahead",
            "--seed",
            "7",
            "--trace",
        ]))
        .unwrap();
        assert_eq!(a.dataset, "chemistry");
        assert_eq!(a.method, "pp");
        assert_eq!(a.rank, 24);
        assert_eq!(a.ranks, 4);
        assert_eq!(a.backend, Backend::P2p);
        assert_eq!(a.threads, Some(8));
        assert!(a.no_lookahead);
        assert!(a.trace);
    }

    #[test]
    fn help_short_circuits_validation() {
        // `--help` anywhere on the line wins, even next to invalid args.
        for argv_case in [
            vec!["--help"],
            vec!["-h"],
            vec!["--help", "--method", "turbo"],
            vec!["--rank", "abc", "--help"],
            vec!["--help", "--frobnicate"],
        ] {
            let a = parse_args_from(&argv(&argv_case)).unwrap();
            assert!(a.help, "{argv_case:?}");
        }
    }

    #[test]
    fn version_flag_parses_and_short_circuits() {
        // `--version` behaves like `--help`: it wins over any other
        // argument, valid or not, so `ppcp --version` can never exit 2.
        for argv_case in [
            vec!["--version"],
            vec!["-V"],
            vec!["--version", "--method", "turbo"],
            vec!["--rank", "abc", "--version"],
            vec!["--version", "--frobnicate"],
        ] {
            let a = parse_args_from(&argv(&argv_case)).unwrap();
            assert!(a.version, "{argv_case:?}");
        }
        assert!(!parse_args_from(&argv(&[])).unwrap().version);
    }

    #[test]
    fn version_must_be_exact_flag() {
        // A typo'd version flag is still an argument error (exit 2), not
        // a silent fallback into a run.
        for bad in ["--versio", "--versions", "-v"] {
            let err = parse_args_from(&argv(&[bad])).unwrap_err();
            assert!(err.contains("unknown flag"), "{bad}: {err}");
        }
    }

    #[test]
    fn backend_defaults_to_rendezvous_and_parses_both_names() {
        assert_eq!(
            parse_args_from(&argv(&[])).unwrap().backend,
            Backend::default()
        );
        assert_eq!(
            parse_args_from(&argv(&[])).unwrap().backend,
            Backend::Rendezvous
        );
        let a = parse_args_from(&argv(&["--backend", "rendezvous"])).unwrap();
        assert_eq!(a.backend, Backend::Rendezvous);
        let a = parse_args_from(&argv(&["--backend", "p2p"])).unwrap();
        assert_eq!(a.backend, Backend::P2p);
    }

    #[test]
    fn unknown_backend_is_rejected_enumerating_names() {
        let err = parse_args_from(&argv(&["--backend", "mpi"])).unwrap_err();
        assert!(err.contains("unknown backend 'mpi'"), "{err}");
        assert!(err.contains("rendezvous|p2p"), "{err}");
    }

    #[test]
    fn unknown_method_is_rejected_not_defaulted() {
        let err = parse_args_from(&argv(&["--method", "turbo"])).unwrap_err();
        assert!(err.contains("unknown method 'turbo'"), "{err}");
        assert!(err.contains("dt|msdt|pp|nncp"), "{err}");
    }

    #[test]
    fn unknown_dataset_is_rejected() {
        // The rejection enumerates every valid dataset name, including the
        // sparse ones.
        let err = parse_args_from(&argv(&["--dataset", "netflix"])).unwrap_err();
        assert!(err.contains("unknown dataset 'netflix'"), "{err}");
        for name in DATASETS {
            assert!(err.contains(name), "missing '{name}' in: {err}");
        }
    }

    #[test]
    fn sparse_datasets_admit_dt_pp_msdt_and_reject_nncp() {
        for ds in ["sparse-powerlaw", "sparse-lowrank"] {
            // dt, pp, and msdt are all legal (msdt is also the default).
            for m in ["dt", "pp", "msdt"] {
                let a = parse_args_from(&argv(&["--dataset", ds, "--method", m])).unwrap();
                assert_eq!(a.dataset, ds);
                assert_eq!(a.method, m);
            }
            let a = parse_args_from(&argv(&["--dataset", ds])).unwrap();
            assert_eq!(a.method, "msdt");
            // nncp stays rejected, and the message enumerates the legal set.
            let err = parse_args_from(&argv(&["--dataset", ds, "--method", "nncp"])).unwrap_err();
            assert!(err.contains("supports --method dt|pp|msdt"), "{ds}: {err}");
            // Sparse runs are still sequential-only, whatever the method.
            for m in ["dt", "pp", "msdt"] {
                let err = parse_args_from(&argv(&["--dataset", ds, "--method", m, "--ranks", "4"]))
                    .unwrap_err();
                assert!(err.contains("sequential-only"), "{ds} {m}: {err}");
            }
        }
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_args_from(&argv(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "{err}");
    }

    #[test]
    fn bad_numbers_and_missing_values_are_rejected() {
        assert!(parse_args_from(&argv(&["--rank", "abc"]))
            .unwrap_err()
            .contains("invalid value for --rank"));
        assert!(parse_args_from(&argv(&["--seed"]))
            .unwrap_err()
            .contains("missing value for --seed"));
        assert!(parse_args_from(&argv(&["--threads", "0"]))
            .unwrap_err()
            .contains("--threads must be at least 1"));
    }
}
