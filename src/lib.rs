//! # parallel-pp
//!
//! A from-scratch Rust reproduction of *"Efficient parallel CP decomposition
//! with pairwise perturbation and multi-sweep dimension tree"* (Linjian Ma
//! and Edgar Solomonik, IPDPS 2021, arXiv:2010.12056).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`tensor`] — dense tensor substrate (GEMM, TTM, batched TTV,
//!   Khatri-Rao, transposes, SPD solves);
//! * [`comm`] — distributed-memory BSP runtime with MPI-style collectives
//!   behind a pluggable [`comm::Collectives`] backend (rendezvous oracle or
//!   point-to-point channel transport) and an α–β–γ–ν cost model;
//! * [`grid`] — processor grids, padded block distributions, distributed
//!   tensors and factor matrices;
//! * [`dtree`] — dimension-tree engines: the standard dimension tree (DT),
//!   the multi-sweep dimension tree (MSDT), and the pairwise-perturbation
//!   (PP) operator trees and corrections;
//! * [`core`] — sequential and parallel CP-ALS / PP-CP-ALS drivers plus the
//!   PLANC-style and Cyclops-style reference baselines;
//! * [`datagen`] — the paper's workloads: collinearity tensors, a
//!   quantum-chemistry density-fitting surrogate, COIL-like and
//!   time-lapse-like image tensors;
//! * [`serve`] — the multi-tenant batch scheduler: many concurrent
//!   decompositions as resumable sessions, interleaved sweep-by-sweep over
//!   the shared kernel pool (`ppcp batch`).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use pp_comm as comm;
pub use pp_core as core;
pub use pp_datagen as datagen;
pub use pp_dtree as dtree;
pub use pp_grid as grid;
pub use pp_serve as serve;
pub use pp_tensor as tensor;

/// Convenient glob import for examples and downstream users.
pub mod prelude {
    pub use pp_comm::{Backend, Collectives, CommWorld, CostModel, Runtime};
    pub use pp_core::{
        cp_als, nn_cp_als, pp_cp_als, AlsConfig, InitStrategy, SolveStrategy, SweepKind,
    };
    pub use pp_dtree::TreePolicy;
    pub use pp_grid::{DistTensor, ProcGrid};
    pub use pp_tensor::prelude::*;
}
