//! Focused unit tests for the hot kernels, independent of the in-crate
//! `#[cfg(test)]` suites:
//!
//! * Khatri-Rao product: output shape and per-entry values straight from
//!   the definition (row of `mats[0]` slowest, matching `unfold`);
//! * MTTKRP: the production (GEMM/tree-friendly) kernel against a
//!   from-scratch pointwise contraction on small random tensors;
//! * DT vs MSDT vs PP-operator construction: before any perturbation step
//!   all engines must produce *identical* MTTKRP results (the MSDT
//!   exactness claim of §III and the PP tree's exact-first-sweep property
//!   of §II-D).

use parallel_pp::dtree::pp_tree::build_pp_operators;
use parallel_pp::dtree::{DimTreeEngine, FactorState, InputTensor, TreePolicy};
use parallel_pp::tensor::kernels::krp::khatri_rao;
use parallel_pp::tensor::kernels::naive::mttkrp;
use parallel_pp::tensor::rng::{seeded, uniform_matrix, uniform_tensor};
use parallel_pp::tensor::{DenseTensor, Matrix};

/// Reference MTTKRP straight from the definition:
/// `M(i_n, r) = Σ_{i ≠ n} T(i_1..i_N) · Π_{m ≠ n} A_m(i_m, r)`.
fn mttkrp_by_definition(t: &DenseTensor, factors: &[Matrix], n: usize) -> Matrix {
    let r = factors[0].cols();
    let mut out = Matrix::zeros(t.dim(n), r);
    for idx in t.shape().indices() {
        let v = t.get(&idx);
        for col in 0..r {
            let mut w = v;
            for (m, f) in factors.iter().enumerate() {
                if m != n {
                    w *= f.get(idx[m], col);
                }
            }
            let cur = out.get(idx[n], col);
            out.set(idx[n], col, cur + w);
        }
    }
    out
}

#[test]
fn khatri_rao_shape_and_values_random() {
    let mut rng = seeded(101);
    for &(ra, rb, rc, r) in &[(2usize, 3usize, 4usize, 3usize), (5, 2, 3, 4), (1, 6, 2, 2)] {
        let a = uniform_matrix(ra, r, &mut rng);
        let b = uniform_matrix(rb, r, &mut rng);
        let c = uniform_matrix(rc, r, &mut rng);
        let k = khatri_rao(&[&a, &b, &c]);
        assert_eq!(k.rows(), ra * rb * rc, "KRP row count");
        assert_eq!(k.cols(), r, "KRP column count");
        // Entry (ia, ib, ic) with mats[0] slowest, mats[2] fastest.
        for ia in 0..ra {
            for ib in 0..rb {
                for ic in 0..rc {
                    let row = (ia * rb + ib) * rc + ic;
                    for col in 0..r {
                        let want = a.get(ia, col) * b.get(ib, col) * c.get(ic, col);
                        let got = k.get(row, col);
                        assert!(
                            (got - want).abs() < 1e-12,
                            "KRP entry ({ia},{ib},{ic},{col}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn khatri_rao_pair_matches_kronecker_structure() {
    let mut rng = seeded(7);
    let a = uniform_matrix(4, 5, &mut rng);
    let b = uniform_matrix(3, 5, &mut rng);
    let k = khatri_rao(&[&a, &b]);
    assert_eq!((k.rows(), k.cols()), (12, 5));
    for i in 0..4 {
        for j in 0..3 {
            for col in 0..5 {
                let want = a.get(i, col) * b.get(j, col);
                assert!((k.get(i * 3 + j, col) - want).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn mttkrp_matches_definition_small_random_tensors() {
    let mut rng = seeded(2024);
    for (case, dims) in [vec![3, 4, 5], vec![4, 2, 3, 3], vec![2, 3, 2, 2, 3]]
        .into_iter()
        .enumerate()
    {
        let t = uniform_tensor(&dims, &mut rng);
        let r = 3;
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| uniform_matrix(d, r, &mut rng))
            .collect();
        for (n, &dim) in dims.iter().enumerate() {
            let fast = mttkrp(&t, &factors, n);
            let slow = mttkrp_by_definition(&t, &factors, n);
            assert_eq!((fast.rows(), fast.cols()), (dim, r));
            assert!(
                fast.max_abs_diff(&slow) < 1e-10,
                "case {case}, mode {n}: MTTKRP kernel deviates from definition"
            );
        }
    }
}

#[test]
fn dt_msdt_pp_first_sweep_identical() {
    // Before any factor update, all three MTTKRP paths are *exact*: the
    // standard dimension tree, the multi-sweep dimension tree, and the
    // first-level PP operators `M^(n)` produced while building the PP tree.
    let mut rng = seeded(99);
    for dims in [vec![4, 5, 6], vec![3, 4, 3, 5]] {
        let order = dims.len();
        let r = 4;
        let t = uniform_tensor(&dims, &mut rng);
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| uniform_matrix(d, r, &mut rng))
            .collect();

        let fs = FactorState::new(factors.clone());
        let mut in_dt = InputTensor::new(t.clone());
        let mut in_ms = InputTensor::with_msdt_copies(t.clone());
        let mut in_pp = InputTensor::new(t.clone());
        let mut e_dt = DimTreeEngine::new(TreePolicy::Standard, order);
        let mut e_ms = DimTreeEngine::new(TreePolicy::MultiSweep, order);
        let mut e_pp = DimTreeEngine::new(TreePolicy::Standard, order);
        let ops = build_pp_operators(&mut in_pp, &fs, &mut e_pp);

        for n in 0..order {
            let reference = mttkrp(&t, &factors, n);
            let m_dt = e_dt.mttkrp(&mut in_dt, &fs, n);
            let m_ms = e_ms.mttkrp(&mut in_ms, &fs, n);
            assert!(
                m_dt.max_abs_diff(&reference) < 1e-9,
                "DT vs naive, dims {dims:?}, mode {n}"
            );
            assert!(
                m_ms.max_abs_diff(&reference) < 1e-9,
                "MSDT vs naive, dims {dims:?}, mode {n}"
            );
            assert!(
                ops.firsts[n].max_abs_diff(&reference) < 1e-9,
                "PP first-level operator vs naive, dims {dims:?}, mode {n}"
            );
            // And transitively: identical to each other.
            assert!(m_dt.max_abs_diff(&m_ms) < 1e-9);
            assert!(m_dt.max_abs_diff(&ops.firsts[n]) < 1e-9);
        }
    }
}

#[test]
fn engines_stay_exact_across_a_full_sweep_of_updates() {
    // The cache-invalidation logic is what makes DT/MSDT exact; drive one
    // full sweep with fresh random updates and re-check against naive.
    let mut rng = seeded(555);
    let dims = vec![4, 4, 5, 3];
    let r = 3;
    let t = uniform_tensor(&dims, &mut rng);
    let factors: Vec<Matrix> = dims
        .iter()
        .map(|&d| uniform_matrix(d, r, &mut rng))
        .collect();

    let mut fs_dt = FactorState::new(factors.clone());
    let mut fs_ms = FactorState::new(factors);
    let mut in_dt = InputTensor::new(t.clone());
    let mut in_ms = InputTensor::with_msdt_copies(t.clone());
    let mut e_dt = DimTreeEngine::new(TreePolicy::Standard, dims.len());
    let mut e_ms = DimTreeEngine::new(TreePolicy::MultiSweep, dims.len());

    for (n, &dim) in dims.iter().enumerate() {
        let m_dt = e_dt.mttkrp(&mut in_dt, &fs_dt, n);
        let m_ms = e_ms.mttkrp(&mut in_ms, &fs_ms, n);
        let reference = mttkrp(&t, fs_dt.factors(), n);
        assert!(
            m_dt.max_abs_diff(&reference) < 1e-9,
            "DT drifted at mode {n}"
        );
        assert!(
            m_ms.max_abs_diff(&reference) < 1e-9,
            "MSDT drifted at mode {n}"
        );
        let upd = uniform_matrix(dim, r, &mut rng);
        fs_dt.update(n, upd.clone());
        fs_ms.update(n, upd);
    }
}
