//! Property-based parity of the CSF sparse MTTKRP against the pointwise
//! dense oracle: for random shapes, densities, skews, and target modes,
//! `sparse_mttkrp` on the CSF forest must be **bitwise** equal to
//! `mttkrp_pointwise` on the densified tensor — the same
//! one-accumulator-per-element / ascending-mode-product contract that
//! makes `PP_NUM_THREADS` a pure performance knob for sparse inputs.

use parallel_pp::datagen::powerlaw_sparse;
use parallel_pp::tensor::kernels::mttv::mttv;
use parallel_pp::tensor::kernels::naive::mttkrp_pointwise;
use parallel_pp::tensor::kernels::ttm::ttm;
use parallel_pp::tensor::rng::{seeded, uniform_matrix};
use parallel_pp::tensor::semisparse::{csf_ttm, semisparse_mttkrp, TtmPlan};
use parallel_pp::tensor::sparse::{sparse_mttkrp, CsfTensor, SparseTensor};
use parallel_pp::tensor::Matrix;
use proptest::prelude::*;

/// Shape menus spanning order 3 and 4, with ragged/prime extents so fiber
/// boundaries never align with chunk boundaries. Sample counts run from
/// empty through ~10% density on the smallest shape.
const SHAPES: &[&[usize]] = &[
    &[6, 5, 4],
    &[9, 8, 7],
    &[13, 4, 11],
    &[17, 16, 3],
    &[5, 4, 3, 3],
    &[7, 6, 5, 4],
];
const SAMPLES: &[usize] = &[0, 1, 7, 40, 150, 600];
const SKEWS: &[f64] = &[1.0, 1.6, 2.5];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csf_mttkrp_matches_pointwise_oracle_bitwise(
        si in 0usize..SHAPES.len(),
        ci in 0usize..SAMPLES.len(),
        ki in 0usize..SKEWS.len(),
        rank in 1usize..9,
        data_seed in 0u64..500,
        factor_seed in 0u64..500,
    ) {
        let dims = SHAPES[si];
        let sp = powerlaw_sparse(dims, SAMPLES[ci], SKEWS[ki], data_seed);
        let csf = CsfTensor::build(&sp);
        let dense = sp.to_dense();
        let mut rng = seeded(factor_seed);
        let factors: Vec<_> = dims
            .iter()
            .map(|&d| uniform_matrix(d, rank, &mut rng))
            .collect();
        for n in 0..dims.len() {
            let got = sparse_mttkrp(&csf, &factors, n);
            let want = mttkrp_pointwise(&dense, &factors, n);
            prop_assert!(
                got.data() == want.data(),
                "dims {:?} nnz {} rank {} mode {}: CSF diverges from oracle",
                dims, sp.nnz(), rank, n
            );
        }
    }

    #[test]
    fn csf_ttm_matches_densified_ttm_bitwise(
        si in 0usize..SHAPES.len(),
        ci in 0usize..SAMPLES.len(),
        ki in 0usize..SKEWS.len(),
        rank in 1usize..9,
        data_seed in 0u64..500,
        factor_seed in 0u64..500,
    ) {
        // The semi-sparse TTM must equal — bit for bit — the dense TTM on
        // the densified tensor, for every contraction mode. Structural
        // zeros contribute exact +0.0 terms in the dense kernel, so
        // skipping them is a bitwise no-op.
        let dims = SHAPES[si];
        let sp = powerlaw_sparse(dims, SAMPLES[ci], SKEWS[ki], data_seed);
        let dense = sp.to_dense();
        let mut rng = seeded(factor_seed);
        let factors: Vec<_> = dims
            .iter()
            .map(|&d| uniform_matrix(d, rank, &mut rng))
            .collect();
        for (mode, factor) in factors.iter().enumerate() {
            let plan = TtmPlan::build(&sp, mode);
            let got = csf_ttm(&sp, &plan, factor).to_dense();
            let want = ttm(&dense, mode, factor).tensor;
            prop_assert!(
                got.data() == want.data(),
                "dims {:?} nnz {} rank {} mode {}: csf_ttm diverges from dense TTM",
                dims, sp.nnz(), rank, mode
            );
        }
    }

    #[test]
    fn semisparse_mttkrp_matches_densified_chain_bitwise(
        si in 0usize..SHAPES.len(),
        ci in 0usize..SAMPLES.len(),
        rank in 1usize..7,
        data_seed in 0u64..500,
        factor_seed in 0u64..500,
        pick in 0usize..8,
    ) {
        // Full chain parity: first level via csf_ttm on a proptest-chosen
        // mode k ≠ n, then semisparse_mttkrp down to M^(n), against the
        // identical dense chain (same TTM mode, same last-position-first
        // TTV order) on the densified tensor.
        let dims = SHAPES[si];
        let order = dims.len();
        let sp = powerlaw_sparse(dims, SAMPLES[ci], SKEWS[1], data_seed);
        let mut rng = seeded(factor_seed);
        let factors: Vec<_> = dims
            .iter()
            .map(|&d| uniform_matrix(d, rank, &mut rng))
            .collect();
        for n in 0..order {
            let k = (0..order).filter(|&m| m != n).nth(pick % (order - 1)).unwrap();
            let plan = TtmPlan::build(&sp, k);
            let ss = csf_ttm(&sp, &plan, &factors[k]);
            let mode_order: Vec<usize> = (0..order).filter(|&m| m != k).collect();
            let got = semisparse_mttkrp(&ss, &mode_order, &factors, n);

            let mut cur = ttm(&sp.to_dense(), k, &factors[k]).tensor;
            let mut ord = mode_order.clone();
            while ord.len() > 1 {
                let pos = (0..ord.len()).rev().find(|&p| ord[p] != n).unwrap();
                cur = mttv(&cur, pos, &factors[ord[pos]]).tensor;
                ord.remove(pos);
            }
            let want = Matrix::from_vec(dims[n], rank, cur.into_vec());
            prop_assert!(
                got.data() == want.data(),
                "dims {:?} nnz {} rank {} n {} k {}: chain diverges from dense",
                dims, sp.nnz(), rank, n, k
            );
        }
    }

    #[test]
    fn coo_ingest_accumulates_like_dense(
        si in 0usize..SHAPES.len(),
        draws in 0usize..120,
        seed in 0u64..500,
    ) {
        // Unsorted COO input with intentional duplicates: `from_coo` must
        // sort, merge duplicates by summation in sorted order, and drop
        // exact zeros — i.e. round-trip through `to_dense` to the same
        // array a manual scatter-accumulate produces.
        let dims = SHAPES[si];
        let volume: usize = dims.iter().product();
        let mut rng = seeded(seed ^ 0xC0C0);
        let mut lcg = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = |m: usize| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        let vals_src = uniform_matrix(draws.max(1), 1, &mut rng);
        let mut inds = Vec::with_capacity(draws * dims.len());
        let mut vals = Vec::with_capacity(draws);
        let mut manual = vec![0.0f64; volume];
        for d in 0..draws {
            let mut lin = 0usize;
            for &ext in dims {
                let i = next(ext);
                inds.push(i);
                lin = lin * ext + i;
            }
            // Duplicate roughly a third of the coordinates.
            let v = vals_src.data()[d];
            vals.push(v);
            manual[lin] += v;
            if next(3) == 0 {
                let start = inds.len() - dims.len();
                let coord: Vec<usize> = inds[start..].to_vec();
                inds.extend_from_slice(&coord);
                vals.push(0.5 * v);
                manual[lin] += 0.5 * v;
            }
        }
        let sp = SparseTensor::from_coo(dims.to_vec(), inds, vals);
        prop_assert!(sp.nnz() <= volume);
        let dense = sp.to_dense();
        prop_assert_eq!(dense.data(), &manual[..]);
    }
}
