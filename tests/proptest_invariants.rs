//! Property-based tests of the core invariants:
//!
//! * DT, MSDT and the naive MTTKRP agree on arbitrary shapes and update
//!   histories (the MSDT exactness claim);
//! * the amortized Eq. (3) residual matches the dense residual;
//! * Khatri-Rao / Gram / Hadamard algebraic identities;
//! * block distributions tile every index exactly once;
//! * collectives preserve content for arbitrary sizes and rank counts.

use parallel_pp::comm::{Collectives, Runtime};
use parallel_pp::dtree::{DimTreeEngine, FactorState, InputTensor, TreePolicy};
use parallel_pp::grid::BlockDist;
use parallel_pp::tensor::kernels::krp::khatri_rao;
use parallel_pp::tensor::kernels::naive::{mttkrp, unfold};
use parallel_pp::tensor::rng::{seeded, uniform_matrix, uniform_tensor};
use parallel_pp::tensor::solve::{cholesky, solve_gram};
use parallel_pp::tensor::Matrix;
use proptest::prelude::*;
use rand::Rng;

fn small_dims(order: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..6, order..=order)
}

// Case counts are tuned for a < 60 s debug-mode budget for the whole suite
// (floor: 24/16/8 per block). The small input sizes keep each case cheap, so
// we run well above the floor for coverage; measured ~0.5 s total in debug.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dt_msdt_naive_agree_order3(dims in small_dims(3), seed in 0u64..1000, r in 1usize..5) {
        check_tree_agreement(&dims, r, seed);
    }

    #[test]
    fn dt_msdt_naive_agree_order4(dims in small_dims(4), seed in 0u64..1000, r in 1usize..4) {
        check_tree_agreement(&dims, r, seed);
    }

    #[test]
    fn unfold_times_krp_is_mttkrp(dims in small_dims(3), seed in 0u64..1000) {
        let mut rng = seeded(seed);
        let t = uniform_tensor(&dims, &mut rng);
        let factors: Vec<Matrix> = dims.iter().map(|&d| uniform_matrix(d, 3, &mut rng)).collect();
        for n in 0..3 {
            let m = mttkrp(&t, &factors, n);
            // Identity: M^(n) = T_(n) · KRP(others).
            let others: Vec<&Matrix> = factors.iter().enumerate()
                .filter(|&(k, _)| k != n).map(|(_, f)| f).collect();
            let krp = khatri_rao(&others);
            let unf = unfold(&t, n);
            let m2 = unf.matmul(&krp);
            prop_assert!(m.max_abs_diff(&m2) < 1e-9);
        }
    }

    #[test]
    fn gram_of_krp_is_hadamard_of_grams(ra in 2usize..6, rb in 2usize..6, r in 1usize..4, seed in 0u64..1000) {
        // (A ⊙ B)ᵀ(A ⊙ B) = AᵀA ∗ BᵀB — the identity that makes Γ cheap.
        let mut rng = seeded(seed);
        let a = uniform_matrix(ra, r, &mut rng);
        let b = uniform_matrix(rb, r, &mut rng);
        let krp = khatri_rao(&[&a, &b]);
        let left = krp.gram();
        let right = a.gram().hadamard(&b.gram());
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn block_dist_tiles_exactly_once(global in 1usize..40, parts in 1usize..8) {
        let d = BlockDist::new(global, parts);
        let mut count = vec![0usize; global];
        for o in 0..parts {
            for l in 0..d.block() {
                if let Some(g) = d.global_of(o, l) {
                    count[g] += 1;
                    prop_assert_eq!(d.owner(g), o);
                    prop_assert_eq!(d.local_of(g), l);
                }
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn cholesky_solve_roundtrip(n in 1usize..8, rows in 1usize..6, seed in 0u64..1000) {
        let mut rng = seeded(seed);
        let a = uniform_matrix(n + 2, n, &mut rng);
        let mut g = a.gram();
        for i in 0..n {
            let v = g.get(i, i) + 0.5;
            g.set(i, i, v);
        }
        prop_assert!(cholesky(&g).is_some());
        let x = uniform_matrix(rows, n, &mut rng);
        let m = x.matmul(&g);
        let (got, _) = solve_gram(&g, &m);
        prop_assert!(got.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn permutation_roundtrip(dims in small_dims(4), seed in 0u64..1000) {
        use parallel_pp::tensor::transpose::permute;
        let mut rng = seeded(seed);
        let t = uniform_tensor(&dims, &mut rng);
        // A pseudo-random permutation from the seed.
        let mut perm: Vec<usize> = (0..4).collect();
        for i in (1..4).rev() {
            perm.swap(i, (seed as usize + i * 7) % (i + 1));
        }
        let p = permute(&t, &perm);
        let mut inv = vec![0usize; 4];
        for (k, &pk) in perm.iter().enumerate() { inv[pk] = k; }
        let back = permute(&p, &inv);
        prop_assert_eq!(back.data(), t.data());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pp_first_order_exact_for_single_mode(dims in small_dims(3), seed in 0u64..500, mode in 1usize..3, eps in 0.05f64..0.8) {
        // MTTKRP is multilinear: a perturbation confined to one mode must
        // be captured *exactly* by the first-order PP correction (Eq. 6),
        // regardless of its magnitude.
        use parallel_pp::dtree::correct::first_order_correction;
        use parallel_pp::dtree::pp_tree::build_pp_operators;
        use parallel_pp::dtree::DimTreeEngine;

        let mut rng = seeded(seed);
        let t = uniform_tensor(&dims, &mut rng);
        let factors: Vec<Matrix> = dims.iter().map(|&d| uniform_matrix(d, 2, &mut rng)).collect();
        let fs = FactorState::new(factors.clone());
        let mut input = InputTensor::new(t.clone());
        let mut engine = DimTreeEngine::new(TreePolicy::Standard, 3);
        let ops = build_pp_operators(&mut input, &fs, &mut engine);

        let mut d = uniform_matrix(dims[mode], 2, &mut rng);
        d.scale(eps);
        let mut new_factors = factors.clone();
        new_factors[mode].axpy(1.0, &d);

        let mut approx = ops.firsts[0].clone();
        approx.axpy(1.0, &first_order_correction(&ops, 0, mode, &d));
        let exact = mttkrp(&t, &new_factors, 0);
        let rel = approx.max_abs_diff(&exact) / exact.norm().max(1e-30);
        prop_assert!(rel < 1e-10, "rel err {rel}");
    }

    #[test]
    fn hals_update_is_nonnegative_and_contracts_residual(rows in 3usize..10, r in 2usize..5, seed in 0u64..500) {
        use parallel_pp::core::nonneg::hals_update;
        let mut rng = seeded(seed);
        let truth = uniform_matrix(rows, r, &mut rng);
        let gamma = {
            let b = uniform_matrix(rows + 2, r, &mut rng);
            let mut g = b.gram();
            for i in 0..r {
                let v = g.get(i, i) + 0.2;
                g.set(i, i, v);
            }
            g
        };
        let m = truth.matmul(&gamma);
        let start = uniform_matrix(rows, r, &mut rng);
        let updated = hals_update(&start, &m, &gamma, 2);
        prop_assert!(updated.data().iter().all(|&x| x >= 0.0));
        // Residual of the normal equations must not increase.
        let res = |a: &Matrix| a.matmul(&gamma).sub(&m).norm();
        prop_assert!(res(&updated) <= res(&start) + 1e-9);
    }
}

proptest! {
    // These spin up rank threads; keep the case count low (floor: 8).
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dist_tensor_scatter_gather_roundtrip(
        d0 in 2usize..7, d1 in 2usize..7, d2 in 2usize..7,
        g0 in 1usize..3, g1 in 1usize..3, g2 in 1usize..3,
        seed in 0u64..100,
    ) {
        use parallel_pp::grid::{DistTensor, ProcGrid};
        use std::sync::Arc;
        let dims = [d0, d1, d2];
        let mut rng = seeded(seed);
        let t = Arc::new(uniform_tensor(&dims, &mut rng));
        let grid = ProcGrid::new(vec![g0, g1, g2]);
        let p = grid.size();
        let (t2, g2c) = (t.clone(), grid.clone());
        let out = Runtime::new(p).run(move |ctx| {
            let local = DistTensor::from_global(&t2, &g2c, ctx.rank());
            local.gather_global(&ctx.comm)
        });
        for g in out.results {
            prop_assert_eq!(g.data(), t.data());
        }
    }

    #[test]
    fn dist_factor_refresh_recovers_global(
        rows in 2usize..12, r in 1usize..4,
        g0 in 1usize..4, g1 in 1usize..3,
        seed in 0u64..100,
    ) {
        use parallel_pp::grid::{DistFactor, FactorLayout, ProcGrid};
        use std::sync::Arc;
        let mut rng = seeded(seed);
        let global = Arc::new(uniform_matrix(rows, r, &mut rng));
        let grid = Arc::new(ProcGrid::new(vec![g0, g1]));
        let p = grid.size();
        let (gl, gr) = (global.clone(), grid.clone());
        let out = Runtime::new(p).run(move |ctx| {
            let layout = FactorLayout::new(gl.rows(), &gr, 0, gl.cols());
            let coords = gr.coords_of(ctx.rank());
            let slice = gr.slice_comm(&ctx.comm, 0);
            let mut f = DistFactor::from_global(&gl, layout, coords[0], slice.rank());
            // Rebuild P from Q and re-gather the global matrix.
            f.refresh_p(&slice);
            f.gather_global(&ctx.comm, &gr, 0)
        });
        for got in out.results {
            prop_assert!(got.max_abs_diff(&global) < 1e-12);
        }
    }

    #[test]
    fn collectives_preserve_content(p in 1usize..6, len in 1usize..20, seed in 0u64..100) {
        let out = Runtime::new(p).run(move |ctx| {
            let mut rng = seeded(seed + ctx.rank() as u64);
            let mine: Vec<f64> = (0..len).map(|_| rng.random::<f64>()).collect();
            let gathered = ctx.comm.all_gather(&mine);
            let summed = ctx.comm.all_reduce_sum(&mine);
            (mine, gathered, summed)
        });
        // Gathered = concatenation in rank order, on every rank.
        let expect_gathered: Vec<f64> = out.results.iter().flat_map(|(m, _, _)| m.clone()).collect();
        let mut expect_sum = vec![0.0f64; len];
        for (m, _, _) in &out.results {
            for (s, x) in expect_sum.iter_mut().zip(m) { *s += x; }
        }
        for (_, g, s) in &out.results {
            prop_assert_eq!(g, &expect_gathered);
            for (a, b) in s.iter().zip(&expect_sum) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

fn check_tree_agreement(dims: &[usize], r: usize, seed: u64) {
    let mut rng = seeded(seed);
    let t = uniform_tensor(dims, &mut rng);
    let factors: Vec<Matrix> = dims
        .iter()
        .map(|&d| uniform_matrix(d, r, &mut rng))
        .collect();
    let mut fs_dt = FactorState::new(factors.clone());
    let mut fs_ms = FactorState::new(factors);
    let mut in_dt = InputTensor::new(t.clone());
    let mut in_ms = InputTensor::with_msdt_copies(t.clone());
    let mut e_dt = DimTreeEngine::new(TreePolicy::Standard, dims.len());
    let mut e_ms = DimTreeEngine::new(TreePolicy::MultiSweep, dims.len());
    for _sweep in 0..2 {
        for (n, &dim) in dims.iter().enumerate() {
            let m_dt = e_dt.mttkrp(&mut in_dt, &fs_dt, n);
            let m_ms = e_ms.mttkrp(&mut in_ms, &fs_ms, n);
            let m_naive = mttkrp(&t, fs_dt.factors(), n);
            assert!(m_dt.max_abs_diff(&m_naive) < 1e-9, "DT vs naive, mode {n}");
            assert!(
                m_ms.max_abs_diff(&m_naive) < 1e-9,
                "MSDT vs naive, mode {n}"
            );
            let upd = uniform_matrix(dim, r, &mut rng);
            fs_dt.update(n, upd.clone());
            fs_ms.update(n, upd);
        }
    }
}
