//! Golden fitness-trace regression suite.
//!
//! Every (method × dataset) case runs a small seeded decomposition and
//! compares its sweep trace **bitwise** — sweep-kind schedule, per-sweep
//! fitness bit patterns, convergence flag, and an FNV-1a digest of the
//! final factor matrices — against a committed JSON trace under
//! `tests/golden/`. The committed traces were generated from the
//! pre-session monolithic drivers, so any kernel, driver, or session
//! refactor that drifts numerics by even one ulp fails loudly here.
//!
//! Kernel results are bit-identical across pool widths (see
//! `tests/thread_parity.rs`), so these traces hold under the CI
//! `PP_NUM_THREADS` matrix.
//!
//! To regenerate after an *intentional* numeric change:
//!
//! ```text
//! PP_UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```

use parallel_pp::comm::Runtime;
use parallel_pp::core::par_pp::par_pp_cp_als;
use parallel_pp::core::{cp_als, nn_cp_als, pp_cp_als, AlsConfig, AlsReport};
use parallel_pp::datagen::collinearity::{collinearity_tensor, CollinearityConfig};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::dtree::TreePolicy;
use parallel_pp::grid::{DistTensor, ProcGrid};
use parallel_pp::tensor::{DenseTensor, Matrix};
use std::path::PathBuf;
use std::sync::Arc;

/// The five driver methods the golden suite pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Method {
    /// Exact CP-ALS through the standard dimension tree.
    Dt,
    /// Exact CP-ALS through the multi-sweep dimension tree.
    Msdt,
    /// Pairwise-perturbation CP-ALS (MSDT exact sweeps).
    Pp,
    /// Nonnegative CP (HALS) on MSDT.
    Nncp,
    /// The parallel BSP wrapper: Algorithm 4 on a 2×2×1 grid, 4 ranks.
    Par,
}

impl Method {
    fn tag(&self) -> &'static str {
        match self {
            Method::Dt => "dt",
            Method::Msdt => "msdt",
            Method::Pp => "pp",
            Method::Nncp => "nncp",
            Method::Par => "par",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dataset {
    /// `noisy_rank(&[12, 10, 11], 4, 0.05, 7)`.
    Lowrank,
    /// Collinearity tensor, s=12, r=3, [0.5, 0.7], seed 3.
    Collin,
}

impl Dataset {
    fn tag(&self) -> &'static str {
        match self {
            Dataset::Lowrank => "lowrank",
            Dataset::Collin => "collin",
        }
    }

    fn tensor(&self) -> DenseTensor {
        match self {
            Dataset::Lowrank => noisy_rank(&[12, 10, 11], 4, 0.05, 7),
            Dataset::Collin => {
                let cfg = CollinearityConfig {
                    s: 12,
                    r: 3,
                    order: 3,
                    lo: 0.5,
                    hi: 0.7,
                };
                collinearity_tensor(&cfg, 3).0
            }
        }
    }

    /// CP rank used for this dataset's runs.
    fn rank(&self) -> usize {
        match self {
            Dataset::Lowrank => 4,
            Dataset::Collin => 3,
        }
    }
}

/// Run one golden case, returning the report and the final factors.
fn run_case(method: Method, dataset: Dataset) -> (AlsReport, Vec<Matrix>) {
    let t = dataset.tensor();
    let exact_cfg = AlsConfig::new(dataset.rank())
        .with_max_sweeps(15)
        .with_tol(0.0);
    let pp_cfg = AlsConfig::new(dataset.rank())
        .with_policy(TreePolicy::MultiSweep)
        .with_pp_tol(0.3)
        .with_max_sweeps(30)
        .with_tol(1e-9);
    match method {
        Method::Dt => {
            let out = cp_als(&t, &exact_cfg);
            (out.report, out.factors)
        }
        Method::Msdt => {
            let out = cp_als(&t, &exact_cfg.with_policy(TreePolicy::MultiSweep));
            (out.report, out.factors)
        }
        Method::Pp => {
            let out = pp_cp_als(&t, &pp_cfg);
            (out.report, out.factors)
        }
        Method::Nncp => {
            let out = nn_cp_als(&t, &exact_cfg.with_policy(TreePolicy::MultiSweep));
            (out.report, out.factors)
        }
        Method::Par => {
            let t = Arc::new(t);
            let grid = ProcGrid::new(vec![2, 2, 1]);
            let (t2, g2, c2) = (t.clone(), grid.clone(), pp_cfg.clone());
            let out = Runtime::new(4).run(move |ctx| {
                let local = DistTensor::from_global(&t2, &g2, ctx.rank());
                par_pp_cp_als(ctx, &g2, &local, &c2)
            });
            let r = out.results.into_iter().next().unwrap();
            (r.report, r.factors)
        }
    }
}

/// FNV-1a 64 over the bit patterns of every factor entry, mode order.
fn factors_digest(factors: &[Matrix]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for f in factors {
        for &x in f.data() {
            for b in x.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Serialize a run into the golden JSON format.
fn to_json(method: &str, dataset: &str, report: &AlsReport, factors: &[Matrix]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"method\": \"{method}\",");
    let _ = writeln!(s, "  \"dataset\": \"{dataset}\",");
    let _ = writeln!(s, "  \"converged\": {},", report.converged);
    let _ = writeln!(
        s,
        "  \"final_fitness_bits\": \"{:016X}\",",
        report.final_fitness.to_bits()
    );
    let _ = writeln!(
        s,
        "  \"factors_fnv\": \"{:016X}\",",
        factors_digest(factors)
    );
    s.push_str("  \"sweeps\": [\n");
    for (i, rec) in report.sweeps.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kind\": \"{}\", \"fitness_bits\": \"{:016X}\", \"fitness\": {:.12}}}",
            rec.kind.label(),
            rec.fitness.to_bits(),
            rec.fitness
        );
        s.push_str(if i + 1 < report.sweeps.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract the first `"key": "value"` occurrence after `from` in `json`.
fn quoted_value<'a>(json: &'a str, key: &str, from: usize) -> Option<(&'a str, usize)> {
    let pat = format!("\"{key}\": \"");
    let start = json[from..].find(&pat)? + from + pat.len();
    let end = json[start..].find('"')? + start;
    Some((&json[start..end], end))
}

/// Parsed golden trace: (kind, fitness bits) pairs plus trailer fields.
struct Golden {
    sweeps: Vec<(String, u64)>,
    converged: bool,
    final_fitness_bits: u64,
    factors_fnv: u64,
}

fn parse_golden(json: &str) -> Golden {
    let (conv, _) = {
        let pat = "\"converged\": ";
        let start = json.find(pat).expect("converged field") + pat.len();
        let end = json[start..].find(',').unwrap() + start;
        (json[start..end].trim() == "true", end)
    };
    let (ffb, _) = quoted_value(json, "final_fitness_bits", 0).expect("final_fitness_bits");
    let (fnv, _) = quoted_value(json, "factors_fnv", 0).expect("factors_fnv");
    let mut sweeps = Vec::new();
    let mut pos = json.find("\"sweeps\"").expect("sweeps array");
    while let Some((kind, after_kind)) = quoted_value(json, "kind", pos) {
        let (bits, after_bits) =
            quoted_value(json, "fitness_bits", after_kind).expect("fitness_bits after kind");
        sweeps.push((kind.to_string(), u64::from_str_radix(bits, 16).unwrap()));
        pos = after_bits;
    }
    Golden {
        sweeps,
        converged: conv,
        final_fitness_bits: u64::from_str_radix(ffb, 16).unwrap(),
        factors_fnv: u64::from_str_radix(fnv, 16).unwrap(),
    }
}

fn golden_path(method: Method, dataset: Dataset) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.json", method.tag(), dataset.tag()))
}

/// Verify (or, under PP_UPDATE_GOLDEN=1, rewrite) one golden trace file.
fn check_trace(
    path: &PathBuf,
    label: &str,
    method_tag: &str,
    dataset_tag: &str,
    report: &AlsReport,
    factors: &[Matrix],
) {
    if std::env::var("PP_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, to_json(method_tag, dataset_tag, report, factors)).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); regenerate with PP_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let golden = parse_golden(&json);
    assert_eq!(
        golden.sweeps.len(),
        report.sweeps.len(),
        "{label}: sweep count drifted"
    );
    for (i, (rec, (kind, bits))) in report.sweeps.iter().zip(golden.sweeps.iter()).enumerate() {
        assert_eq!(
            rec.kind.label(),
            kind,
            "{label}: sweep-kind schedule drifted at sweep {i}"
        );
        assert_eq!(
            rec.fitness.to_bits(),
            *bits,
            "{label}: fitness drifted at sweep {i}: {} vs golden {}",
            rec.fitness,
            f64::from_bits(*bits)
        );
    }
    assert_eq!(report.converged, golden.converged, "{label}");
    assert_eq!(
        report.final_fitness.to_bits(),
        golden.final_fitness_bits,
        "{label}: final fitness drifted"
    );
    assert_eq!(
        factors_digest(factors),
        golden.factors_fnv,
        "{label}: final factors drifted"
    );
}

fn check_case(method: Method, dataset: Dataset) {
    let (report, factors) = run_case(method, dataset);
    let path = golden_path(method, dataset);
    check_trace(
        &path,
        &format!("{method:?}/{dataset:?}"),
        method.tag(),
        dataset.tag(),
        &report,
        &factors,
    );
}

macro_rules! golden_case {
    ($name:ident, $method:expr, $dataset:expr) => {
        #[test]
        fn $name() {
            check_case($method, $dataset);
        }
    };
}

/// Sparse golden cases: PP and MSDT over the semi-sparse chain. The input
/// never densifies inside the session; these traces pin the PR 8
/// representation-polymorphic planner bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SparseDataset {
    /// `powerlaw_sparse(&[24, 20, 16], 800, 1.8, 5)`.
    Powerlaw,
    /// `sparse_lowrank(&[18, 16, 14], 3, 0.06, 6)`.
    Lowrank,
}

impl SparseDataset {
    fn tag(&self) -> &'static str {
        match self {
            SparseDataset::Powerlaw => "powerlaw",
            SparseDataset::Lowrank => "lowrank",
        }
    }

    fn tensor(&self) -> parallel_pp::tensor::sparse::SparseTensor {
        match self {
            SparseDataset::Powerlaw => {
                parallel_pp::datagen::sparse::powerlaw_sparse(&[24, 20, 16], 800, 1.8, 5)
            }
            SparseDataset::Lowrank => {
                parallel_pp::datagen::sparse::sparse_lowrank(&[18, 16, 14], 3, 0.06, 6).0
            }
        }
    }
}

fn run_sparse_case(method: Method, dataset: SparseDataset) -> (AlsReport, Vec<Matrix>) {
    use parallel_pp::core::{AlsSession, SessionKind};
    let sp = dataset.tensor();
    let out = match method {
        Method::Msdt => AlsSession::new_sparse(
            &sp,
            &AlsConfig::new(3)
                .with_policy(TreePolicy::MultiSweep)
                .with_max_sweeps(10)
                .with_tol(0.0),
            SessionKind::Exact,
        )
        .run(),
        Method::Pp => AlsSession::new_sparse(
            &sp,
            &AlsConfig::new(3)
                .with_policy(TreePolicy::MultiSweep)
                .with_pp_tol(0.5)
                .with_max_sweeps(16)
                .with_tol(0.0),
            SessionKind::Pp,
        )
        .run(),
        other => unreachable!("no sparse golden case for {other:?}"),
    };
    // The traces pin a run that stayed sparse end to end: the chain
    // counters must be live and the dense-volume GEMM counter absent.
    assert!(
        out.report.stats.semisparse_ttm_flops > 0,
        "sparse case densified its input"
    );
    (out.report, out.factors)
}

fn check_sparse_case(method: Method, dataset: SparseDataset) {
    let (report, factors) = run_sparse_case(method, dataset);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("sparse_{}_{}.json", method.tag(), dataset.tag()));
    check_trace(
        &path,
        &format!("sparse {method:?}/{dataset:?}"),
        method.tag(),
        &format!("sparse-{}", dataset.tag()),
        &report,
        &factors,
    );
}

macro_rules! sparse_golden_case {
    ($name:ident, $method:expr, $dataset:expr) => {
        #[test]
        fn $name() {
            check_sparse_case($method, $dataset);
        }
    };
}

sparse_golden_case!(sparse_pp_powerlaw, Method::Pp, SparseDataset::Powerlaw);
sparse_golden_case!(sparse_pp_lowrank, Method::Pp, SparseDataset::Lowrank);
sparse_golden_case!(sparse_msdt_powerlaw, Method::Msdt, SparseDataset::Powerlaw);
sparse_golden_case!(sparse_msdt_lowrank, Method::Msdt, SparseDataset::Lowrank);

/// The sparse PP cases must actually enter the PP regime.
#[test]
fn sparse_pp_cases_reach_pp_regime() {
    for dataset in [SparseDataset::Powerlaw, SparseDataset::Lowrank] {
        let (report, _) = run_sparse_case(Method::Pp, dataset);
        let has_approx = report.sweeps.iter().any(|s| s.kind.label() == "PP-approx");
        assert!(has_approx, "{dataset:?}: sparse PP regime never activated");
    }
}

golden_case!(dt_lowrank, Method::Dt, Dataset::Lowrank);
golden_case!(dt_collin, Method::Dt, Dataset::Collin);
golden_case!(msdt_lowrank, Method::Msdt, Dataset::Lowrank);
golden_case!(msdt_collin, Method::Msdt, Dataset::Collin);
golden_case!(pp_lowrank, Method::Pp, Dataset::Lowrank);
golden_case!(pp_collin, Method::Pp, Dataset::Collin);
golden_case!(nncp_lowrank, Method::Nncp, Dataset::Lowrank);
golden_case!(nncp_collin, Method::Nncp, Dataset::Collin);
golden_case!(par_lowrank, Method::Par, Dataset::Lowrank);
golden_case!(par_collin, Method::Par, Dataset::Collin);

/// The PP cases must actually exercise the PP regime, otherwise the golden
/// trace pins nothing interesting — guard against silently losing coverage
/// to a future config tweak.
#[test]
fn pp_cases_reach_pp_regime() {
    for dataset in [Dataset::Lowrank, Dataset::Collin] {
        let (report, _) = run_case(Method::Pp, dataset);
        let has_init = report.sweeps.iter().any(|s| s.kind.label() == "PP-init");
        let has_approx = report.sweeps.iter().any(|s| s.kind.label() == "PP-approx");
        assert!(
            has_init && has_approx,
            "{dataset:?}: PP regime never activated (init={has_init}, approx={has_approx})"
        );
    }
}
