//! Session-parity suite: stepping an [`AlsSession`] — under arbitrary
//! pause/park/resume/interleave schedules — is **bitwise identical** to
//! the one-shot drivers, for randomized dims, rank, method, and pool
//! width.
//!
//! Together with `tests/golden_traces.rs` (which pins the pre-session
//! monolithic traces) this closes the loop: driver == session step-loop ==
//! any interleaving of step-loops.

mod common;

use common::{assert_identical, override_lock};
use parallel_pp::core::{
    cp_als, nn_cp_als, pp_cp_als, AlsConfig, AlsOutput, AlsSession, SessionKind, Step,
};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::dtree::TreePolicy;
use parallel_pp::tensor::DenseTensor;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Method {
    Dt,
    Msdt,
    Pp,
    Nncp,
}

impl Method {
    /// Decode a proptest-generated index (the vendored shim has no
    /// enum/oneof strategies).
    fn from_idx(i: usize) -> Method {
        match i % 4 {
            0 => Method::Dt,
            1 => Method::Msdt,
            2 => Method::Pp,
            _ => Method::Nncp,
        }
    }

    fn session_kind(&self) -> SessionKind {
        match self {
            Method::Dt | Method::Msdt => SessionKind::Exact,
            Method::Pp => SessionKind::Pp,
            Method::Nncp => SessionKind::NonNeg,
        }
    }

    fn config(&self, rank: usize, sweeps: usize) -> AlsConfig {
        let cfg = AlsConfig::new(rank).with_max_sweeps(sweeps).with_tol(0.0);
        match self {
            Method::Dt => cfg,
            Method::Msdt | Method::Nncp => cfg.with_policy(TreePolicy::MultiSweep),
            // A generous ε so the PP regime activates within the budget.
            Method::Pp => cfg
                .with_policy(TreePolicy::MultiSweep)
                .with_pp_tol(0.4)
                .with_tol(0.0),
        }
    }

    fn driver(&self, t: &DenseTensor, cfg: &AlsConfig) -> AlsOutput {
        match self {
            Method::Dt | Method::Msdt => cp_als(t, cfg),
            Method::Pp => pp_cp_als(t, cfg),
            Method::Nncp => nn_cp_als(t, cfg),
        }
    }
}

/// Step-loop with a park after every `park_every`-th sweep (0 = never).
fn stepped(t: &DenseTensor, cfg: &AlsConfig, kind: SessionKind, park_every: usize) -> AlsOutput {
    let mut s = AlsSession::new(t, cfg, kind);
    let mut i = 0usize;
    while let Step::Swept(_) = s.step() {
        i += 1;
        if park_every > 0 && i.is_multiple_of(park_every) {
            s.park();
        }
    }
    s.finish()
}

// Case counts tuned for a < 60 s debug budget; each case runs two or three
// full (small) decompositions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized dims/rank/method/threads: one-shot driver ==
    /// park-every-sweep step loop, bitwise.
    #[test]
    fn step_loop_matches_driver(
        dims in prop::collection::vec(4usize..8, 3..=4),
        rank in 2usize..4,
        sweeps in 3usize..7,
        method_idx in 0usize..4,
        threads in 1usize..3,
        seed in 0u64..500,
    ) {
        let method = Method::from_idx(method_idx);
        let _serial = override_lock();
        let t = noisy_rank(&dims, rank, 0.05, seed);
        let cfg = method.config(rank, sweeps).with_threads(threads).with_seed(seed);
        let a = method.driver(&t, &cfg);
        let b = stepped(&t, &cfg, method.session_kind(), 1);
        assert_identical(&a, &b);
    }

    /// Stop at sweep k, run an unrelated decomposition in between (dirties
    /// the pool and the speculation slot), resume, compare the tail.
    #[test]
    fn stop_at_k_resume_tail_matches(
        k in 1usize..5,
        method_idx in 0usize..4,
        seed in 0u64..500,
    ) {
        let method = Method::from_idx(method_idx);
        let _serial = override_lock();
        let t = noisy_rank(&[8, 7, 6], 3, 0.05, seed);
        let cfg = method.config(3, 8).with_seed(seed);
        let a = method.driver(&t, &cfg);

        let mut s = AlsSession::new(&t, &cfg, method.session_kind());
        for _ in 0..k {
            let _ = s.step();
        }
        s.park();
        // Intermission: a different tensor decomposed to completion.
        let other = noisy_rank(&[6, 5, 7], 2, 0.05, seed.wrapping_add(1));
        let _ = cp_als(&other, &AlsConfig::new(2).with_max_sweeps(3).with_tol(0.0));
        // Resume the original session and drain it.
        while let Step::Swept(_) = s.step() {}
        let b = s.finish();
        assert_identical(&a, &b);
    }

    /// Two sessions stepped alternately (the batch scheduler's round-robin)
    /// each match their solo runs — tenant isolation at the numeric level.
    #[test]
    fn interleaved_sessions_are_isolated(
        method_a_idx in 0usize..4,
        method_b_idx in 0usize..4,
        seed in 0u64..500,
    ) {
        let method_a = Method::from_idx(method_a_idx);
        let method_b = Method::from_idx(method_b_idx);
        let _serial = override_lock();
        let ta = noisy_rank(&[8, 6, 7], 3, 0.05, seed);
        let tb = noisy_rank(&[6, 7, 6], 2, 0.05, seed.wrapping_add(7));
        let cfg_a = method_a.config(3, 6).with_seed(seed);
        let cfg_b = method_b.config(2, 9).with_seed(seed.wrapping_add(7));
        let solo_a = method_a.driver(&ta, &cfg_a);
        let solo_b = method_b.driver(&tb, &cfg_b);

        let mut sa = AlsSession::new(&ta, &cfg_a, method_a.session_kind());
        let mut sb = AlsSession::new(&tb, &cfg_b, method_b.session_kind());
        let (mut da, mut db) = (false, false);
        while !(da && db) {
            if !da {
                da = matches!(sa.step(), Step::Done(_));
                sa.park();
            }
            if !db {
                db = matches!(sb.step(), Step::Done(_));
                sb.park();
            }
        }
        assert_identical(&solo_a, &sa.finish());
        assert_identical(&solo_b, &sb.finish());
    }
}

/// The PP regime must survive a pause landing *inside* it: pause right
/// after the PP-init sweep, resume, and still match the one-shot run.
#[test]
fn pause_inside_pp_regime_matches() {
    let _serial = override_lock();
    let t = noisy_rank(&[10, 9, 11], 3, 0.05, 7);
    let cfg = AlsConfig::new(3)
        .with_policy(TreePolicy::MultiSweep)
        .with_pp_tol(0.3)
        .with_max_sweeps(40)
        .with_tol(1e-9);
    let a = pp_cp_als(&t, &cfg);
    let init_pos = a
        .report
        .sweeps
        .iter()
        .position(|s| s.kind == parallel_pp::core::SweepKind::PpInit)
        .expect("PP must activate in this configuration");

    let mut s = AlsSession::new(&t, &cfg, SessionKind::Pp);
    for _ in 0..=init_pos {
        let _ = s.step();
    }
    s.park();
    // Intermission inside the approximated regime.
    let other = noisy_rank(&[5, 6, 5], 2, 0.05, 9);
    let _ = cp_als(&other, &AlsConfig::new(2).with_max_sweeps(2).with_tol(0.0));
    while let Step::Swept(_) = s.step() {}
    assert_identical(&a, &s.finish());
}

/// Convergence behaves identically under stepping: a converged session
/// reports the same sweep count and flag as the driver.
#[test]
fn convergence_matches_under_stepping() {
    let _serial = override_lock();
    let (t, _) = parallel_pp::datagen::lowrank::exact_rank(&[7, 7, 7], 2, 5);
    let cfg = AlsConfig::new(2).with_max_sweeps(300).with_tol(1e-5);
    let a = cp_als(&t, &cfg);
    let b = stepped(&t, &cfg, SessionKind::Exact, 2);
    assert!(a.report.converged);
    assert_identical(&a, &b);
}
