//! End-to-end correctness of streaming CP (`StreamingSession`):
//!
//! * the incremental dimension-tree cache extension equals the
//!   full-recompute oracle **bitwise** over randomized arrival schedules
//!   (property-based), for the exact and PP session kinds;
//! * streamed traces are bit-identical under a 1-thread and a 4-thread
//!   pool (the threshold-crossing slice sizes actually exercise the
//!   pooled kernels);
//! * a session parked to a `PPCK` checkpoint **mid-window, mid-stream**
//!   and resumed from disk replays the remaining arrivals bit-identically
//!   to an uninterrupted run.

use parallel_pp::core::{AlsConfig, AlsOutput, SessionKind, StreamingSession};
use parallel_pp::datagen::timelapse::{TimelapseConfig, TimelapseStream, TIME_MODE};
use parallel_pp::dtree::CacheUpdate;
use proptest::prelude::*;

mod common;
use common::{assert_identical, override_lock};

/// Drive the whole arrival schedule under one cache-update policy.
fn drive(
    feed: &TimelapseStream,
    cfg: &AlsConfig,
    kind: SessionKind,
    spa: usize,
    update: CacheUpdate,
) -> AlsOutput {
    let mut s = StreamingSession::new(&feed.initial(), cfg, kind, TIME_MODE, spa, update);
    s.run_window();
    for i in 0..feed.n_arrivals() {
        s.arrive(&feed.slice(i));
        s.run_window();
    }
    s.finish()
}

/// The mid-size feed used by the thread- and checkpoint-parity tests:
/// large enough that mode-0/1/2 GEMMs cross the parallel-work threshold.
fn midsize_feed() -> TimelapseStream {
    let cfg = TimelapseConfig {
        height: 12,
        width: 10,
        bands: 8,
        times: 7,
        materials: 3,
        noise: 1e-3,
    };
    TimelapseStream::new(&cfg, 17, 3, 2).unwrap()
}

// Case counts tuned for the suite's < 60 s debug budget; each case is a
// handful of sweeps over a tiny order-4 tensor (~1 ms).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental == recompute, bitwise, over random arrival schedules.
    #[test]
    fn incremental_matches_recompute_oracle(
        initial in 1usize..5,
        arrive in 1usize..4,
        n_arrivals in 1usize..4,
        spa in 1usize..4,
        pp in 0usize..2,
        seed in 0u64..1000,
    ) {
        let tcfg = TimelapseConfig {
            height: 6,
            width: 5,
            bands: 4,
            times: initial + arrive * n_arrivals,
            materials: 2,
            noise: 1e-2,
        };
        let feed = TimelapseStream::new(&tcfg, seed, initial, arrive).unwrap();
        let cfg = AlsConfig::new(3).with_tol(0.0).with_pp_tol(0.3).with_seed(seed ^ 0x9e37);
        let kind = if pp == 1 { SessionKind::Pp } else { SessionKind::Exact };
        let a = drive(&feed, &cfg, kind, spa, CacheUpdate::Incremental);
        let b = drive(&feed, &cfg, kind, spa, CacheUpdate::Recompute);
        prop_assert_eq!(a.report.sweeps.len(), b.report.sweeps.len());
        for (x, y) in a.report.sweeps.iter().zip(b.report.sweeps.iter()) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(x.fitness.to_bits(), y.fitness.to_bits());
        }
        for (fa, fb) in a.factors.iter().zip(b.factors.iter()) {
            prop_assert_eq!(fa.data(), fb.data());
        }
    }
}

#[test]
fn streamed_trace_identical_under_1_and_n_threads() {
    let _serial = override_lock();
    let feed = midsize_feed();
    for kind in [SessionKind::Exact, SessionKind::Pp] {
        let run = |threads: usize| {
            let cfg = AlsConfig::new(8)
                .with_tol(0.0)
                .with_pp_tol(0.3)
                .with_threads(threads);
            drive(&feed, &cfg, kind, 3, CacheUpdate::Incremental)
        };
        assert_identical(&run(1), &run(4));
    }
}

#[test]
fn checkpoint_mid_stream_resumes_bit_identically() {
    let _serial = override_lock();
    let feed = midsize_feed();
    let cfg = AlsConfig::new(6).with_tol(0.0).with_pp_tol(0.3);
    let spa = 3;
    let full = drive(&feed, &cfg, SessionKind::Pp, spa, CacheUpdate::Incremental);

    // Interrupted twin: park to disk mid-window after the first arrival,
    // drop everything, resume from the file, replay the rest.
    let path = std::env::temp_dir().join(format!("pp-stream-parity-{}.ppck", std::process::id()));
    let tag = 0xfeed_beef;
    {
        let mut s = StreamingSession::new(
            &feed.initial(),
            &cfg,
            SessionKind::Pp,
            TIME_MODE,
            spa,
            CacheUpdate::Incremental,
        );
        s.run_window();
        s.arrive(&feed.slice(0));
        s.step(); // window half-done: 1 of 3 sweeps
        s.park_to_disk(&path, tag).unwrap();
    }
    let (mut s, read_tag) =
        StreamingSession::resume_from_disk(&path, |extent| feed.prefix(extent)).unwrap();
    assert_eq!(read_tag, tag);
    assert_eq!(s.arrivals_done(), 1);
    s.run_window();
    for i in s.arrivals_done()..feed.n_arrivals() {
        s.arrive(&feed.slice(i));
        s.run_window();
    }
    assert_identical(&full, &s.finish());

    // A truncated file must be refused cleanly, not panic or half-resume.
    let bytes = std::fs::read(&path).unwrap();
    let err = StreamingSession::resume_from_bytes(&bytes[..bytes.len() / 2], |e| feed.prefix(e))
        .err()
        .unwrap();
    assert!(
        err.contains("truncated") || err.contains("length mismatch"),
        "{err}"
    );
    let _ = std::fs::remove_file(&path);
}
