//! Cross-crate integration tests: sequential vs parallel equivalence,
//! PP accuracy on realistic workloads, and planted-factor recovery.

use parallel_pp::comm::Runtime;
use parallel_pp::core::par_als::par_cp_als;
use parallel_pp::core::par_pp::par_pp_cp_als;
use parallel_pp::core::planc::planc_cp_als;
use parallel_pp::core::{cp_als, pp_cp_als, AlsConfig, SweepKind};
use parallel_pp::datagen::chemistry::{density_fitting_tensor, ChemistryConfig};
use parallel_pp::datagen::coil::{coil_tensor, CoilConfig};
use parallel_pp::datagen::collinearity::{collinearity_tensor, CollinearityConfig};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::datagen::timelapse::{timelapse_tensor, TimelapseConfig};
use parallel_pp::dtree::TreePolicy;
use parallel_pp::grid::{DistTensor, ProcGrid};
use std::sync::Arc;

#[test]
fn all_four_parallel_drivers_agree_on_one_workload() {
    // One tensor, four drivers (DT, MSDT, PLANC, PP) on a 2x2x1 grid: the
    // exact drivers must agree with each other sweep-by-sweep; PP must end
    // within approximation distance.
    let (t, _, _) = collinearity_tensor(
        &CollinearityConfig {
            s: 12,
            r: 3,
            order: 3,
            lo: 0.4,
            hi: 0.6,
        },
        21,
    );
    let t = Arc::new(t);
    let grid = ProcGrid::new(vec![2, 2, 1]);
    let cfg = AlsConfig::new(3)
        .with_max_sweeps(12)
        .with_tol(0.0)
        .with_pp_tol(0.3);

    let run = |which: usize| {
        let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
        let out = Runtime::new(4).run(move |ctx| {
            let local = DistTensor::from_global(&t2, &g2, ctx.rank());
            match which {
                0 => par_cp_als(ctx, &g2, &local, &c2).report,
                1 => {
                    let c = c2.clone().with_policy(TreePolicy::MultiSweep);
                    par_cp_als(ctx, &g2, &local, &c).report
                }
                2 => planc_cp_als(ctx, &g2, &local, &c2).report,
                _ => {
                    let c = c2.clone().with_policy(TreePolicy::MultiSweep);
                    par_pp_cp_als(ctx, &g2, &local, &c).report
                }
            }
        });
        out.results.into_iter().next().unwrap()
    };

    let dt = run(0);
    let msdt = run(1);
    let planc = run(2);
    let pp = run(3);

    for ((a, b), c) in dt
        .sweeps
        .iter()
        .zip(msdt.sweeps.iter())
        .zip(planc.sweeps.iter())
    {
        assert!((a.fitness - b.fitness).abs() < 1e-8, "DT vs MSDT");
        assert!((a.fitness - c.fitness).abs() < 1e-8, "DT vs PLANC");
    }
    assert!(
        (pp.final_fitness - dt.final_fitness).abs() < 0.05,
        "PP {} vs DT {}",
        pp.final_fitness,
        dt.final_fitness
    );
}

#[test]
fn parallel_pp_chemistry_matches_sequential() {
    let t = Arc::new(density_fitting_tensor(
        &ChemistryConfig {
            n_orb: 10,
            n_aux: 40,
            ..ChemistryConfig::default()
        },
        5,
    ));
    let cfg = AlsConfig::new(4)
        .with_policy(TreePolicy::MultiSweep)
        .with_max_sweeps(25)
        .with_tol(1e-9)
        .with_pp_tol(0.15);

    let seq = pp_cp_als(&t, &cfg);
    let grid = ProcGrid::new(vec![2, 2, 1]);
    let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
    let out = Runtime::new(4).run(move |ctx| {
        let local = DistTensor::from_global(&t2, &g2, ctx.rank());
        par_pp_cp_als(ctx, &g2, &local, &c2).report
    });
    let par = &out.results[0];
    assert!(
        (seq.report.final_fitness - par.final_fitness).abs() < 1e-4,
        "seq {} vs par {}",
        seq.report.final_fitness,
        par.final_fitness
    );
}

#[test]
fn coil_and_timelapse_decompose_sanely() {
    let coil = coil_tensor(&CoilConfig {
        size: 12,
        objects: 3,
        poses: 8,
    });
    let cfg = AlsConfig::new(6).with_max_sweeps(30).with_tol(1e-6);
    let out = cp_als(&coil, &cfg);
    assert!(
        out.report.final_fitness > 0.5,
        "COIL fitness {}",
        out.report.final_fitness
    );

    let tl = timelapse_tensor(
        &TimelapseConfig {
            height: 10,
            width: 12,
            bands: 8,
            times: 5,
            materials: 4,
            noise: 1e-3,
        },
        3,
    );
    let out = cp_als(&tl, &AlsConfig::new(5).with_max_sweeps(40).with_tol(1e-7));
    assert!(
        out.report.final_fitness > 0.95,
        "timelapse fitness {}",
        out.report.final_fitness
    );
}

#[test]
fn pp_speedup_appears_on_slow_converging_tensor() {
    // High collinearity → many sweeps → most of them PP-approx.
    let (t, _, _) = collinearity_tensor(
        &CollinearityConfig {
            s: 30,
            r: 6,
            order: 3,
            lo: 0.6,
            hi: 0.8,
        },
        9,
    );
    let cfg = AlsConfig::new(6)
        .with_policy(TreePolicy::MultiSweep)
        .with_max_sweeps(100)
        .with_tol(1e-7)
        .with_pp_tol(0.2);
    let out = pp_cp_als(&t, &cfg);
    let approx = out.report.count(SweepKind::PpApprox);
    let exact = out.report.count(SweepKind::Exact);
    assert!(
        approx >= exact,
        "expected PP sweeps to dominate: {approx} approx vs {exact} exact"
    );
}

#[test]
fn grid_larger_than_mode_extent() {
    // Mode 0 has extent 3 on a grid extent of 4: one slice owns no real
    // rows at all — everything must still match the sequential run.
    let t = Arc::new(noisy_rank(&[3, 8, 8], 2, 0.1, 41));
    let cfg = AlsConfig::new(2).with_max_sweeps(5).with_tol(0.0);
    let seq = cp_als(&t, &cfg);
    let grid = ProcGrid::new(vec![4, 1, 2]);
    let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
    let out = Runtime::new(8).run(move |ctx| {
        let local = DistTensor::from_global(&t2, &g2, ctx.rank());
        par_cp_als(ctx, &g2, &local, &c2).report
    });
    for (a, b) in seq.report.sweeps.iter().zip(out.results[0].sweeps.iter()) {
        assert!(
            (a.fitness - b.fitness).abs() < 1e-8,
            "seq {} vs par {}",
            a.fitness,
            b.fitness
        );
    }
}

#[test]
fn rank_one_decomposition_works() {
    // Degenerate CP rank R = 1 end to end.
    let (t, _) = parallel_pp::datagen::lowrank::exact_rank(&[6, 5, 7], 1, 13);
    let out = cp_als(&t, &AlsConfig::new(1).with_max_sweeps(60).with_tol(1e-10));
    assert!(
        out.report.final_fitness > 0.999,
        "fitness {}",
        out.report.final_fitness
    );
}

#[test]
fn order4_parallel_grid_with_padding() {
    // Odd sizes on an uneven grid exercise every padding path at order 4.
    let t = Arc::new(noisy_rank(&[5, 7, 6, 5], 3, 0.1, 31));
    let cfg = AlsConfig::new(3).with_max_sweeps(6).with_tol(0.0);
    let seq = cp_als(&t, &cfg);
    let grid = ProcGrid::new(vec![2, 2, 2, 1]);
    let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
    let out = Runtime::new(8).run(move |ctx| {
        let local = DistTensor::from_global(&t2, &g2, ctx.rank());
        par_cp_als(ctx, &g2, &local, &c2).report
    });
    for (a, b) in seq.report.sweeps.iter().zip(out.results[0].sweeps.iter()) {
        assert!((a.fitness - b.fitness).abs() < 1e-8);
    }
}
