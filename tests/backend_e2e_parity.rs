//! End-to-end determinism of the distributed drivers across comm backends:
//! every driver must produce **bitwise identical** fitness traces (and
//! identical model-cost ledgers) whether the collectives run on the
//! rendezvous oracle or on the p2p channel transport. The p2p algorithms
//! move raw per-rank contributions and reduce them in ascending rank order
//! — exactly the summation order of the rendezvous oracle — so equality is
//! exact, not approximate.
//!
//! Also injects a rank panic under the p2p backend: the launcher must
//! report a rank-thread panic (peers blocked on the dead rank's channels
//! are poisoned awake), not hang.

use parallel_pp::comm::{Backend, CostCounters, Runtime};
use parallel_pp::core::par_als::par_cp_als;
use parallel_pp::core::par_common::ParState;
use parallel_pp::core::par_pp::par_pp_cp_als;
use parallel_pp::core::planc::planc_cp_als;
use parallel_pp::core::ref_pp::{ref_pp_approx_correction, ref_pp_init};
use parallel_pp::core::{AlsConfig, AlsReport};
use parallel_pp::datagen::collinearity::{collinearity_tensor, CollinearityConfig};
use parallel_pp::dtree::TreePolicy;
use parallel_pp::grid::{DistTensor, ProcGrid};
use parallel_pp::tensor::{DenseTensor, Matrix};
use std::sync::Arc;

fn workload() -> DenseTensor {
    let (t, _, _) = collinearity_tensor(
        &CollinearityConfig {
            s: 12,
            r: 3,
            order: 3,
            lo: 0.4,
            hi: 0.6,
        },
        21,
    );
    t
}

fn base_cfg() -> AlsConfig {
    AlsConfig::new(3)
        .with_max_sweeps(8)
        .with_tol(0.0)
        .with_pp_tol(0.3)
}

/// Run one distributed driver on both backends (P=4, 2×2×1 grid) and
/// assert the per-rank reports and model ledgers match bitwise.
fn assert_driver_parity(which: &str) {
    let t = Arc::new(workload());
    let grid = ProcGrid::new(vec![2, 2, 1]);
    let cfg = base_cfg();
    let run = |backend: Backend| -> (Vec<AlsReport>, Vec<CostCounters>) {
        let (t2, g2, c2, which) = (t.clone(), grid.clone(), cfg.clone(), which.to_string());
        let out = Runtime::with_backend(4, backend).run(move |ctx| {
            let local = DistTensor::from_global(&t2, &g2, ctx.rank());
            match which.as_str() {
                "dt" => par_cp_als(ctx, &g2, &local, &c2).report,
                "msdt" => {
                    let c = c2.clone().with_policy(TreePolicy::MultiSweep);
                    par_cp_als(ctx, &g2, &local, &c).report
                }
                "planc" => planc_cp_als(ctx, &g2, &local, &c2).report,
                "pp" => {
                    let c = c2.clone().with_policy(TreePolicy::MultiSweep);
                    par_pp_cp_als(ctx, &g2, &local, &c).report
                }
                other => panic!("unknown driver {other}"),
            }
        });
        (out.results, out.costs)
    };
    let (rv, rv_costs) = run(Backend::Rendezvous);
    let (pp, pp_costs) = run(Backend::P2p);
    for (rank, (a, b)) in rv.iter().zip(pp.iter()).enumerate() {
        assert_eq!(
            a.sweeps.len(),
            b.sweeps.len(),
            "{which}: sweep count diverged on rank {rank}"
        );
        for (i, (sa, sb)) in a.sweeps.iter().zip(b.sweeps.iter()).enumerate() {
            assert_eq!(sa.kind, sb.kind, "{which}: sweep {i} kind, rank {rank}");
            assert_eq!(
                sa.fitness.to_bits(),
                sb.fitness.to_bits(),
                "{which}: fitness diverged at sweep {i} on rank {rank}: {} vs {}",
                sa.fitness,
                sb.fitness
            );
        }
        assert_eq!(
            a.final_fitness.to_bits(),
            b.final_fitness.to_bits(),
            "{which}: final fitness, rank {rank}"
        );
    }
    assert_eq!(rv_costs, pp_costs, "{which}: model ledgers diverged");
}

#[test]
fn par_cp_als_dt_trace_identical_across_backends() {
    assert_driver_parity("dt");
}

#[test]
fn par_cp_als_msdt_trace_identical_across_backends() {
    assert_driver_parity("msdt");
}

#[test]
fn planc_cp_als_trace_identical_across_backends() {
    assert_driver_parity("planc");
}

#[test]
fn par_pp_cp_als_trace_identical_across_backends() {
    assert_driver_parity("pp");
}

#[test]
fn ref_pp_corrections_identical_across_backends() {
    // The Cyclops-style reference path exercises all_gather, all_to_all
    // (redistribution), and per-correction all-reduces; its per-rank
    // correction matrices must come out bit-equal on both backends.
    let t = Arc::new(workload());
    let grid = ProcGrid::new(vec![2, 2, 1]);
    let cfg = base_cfg();
    let run = |backend: Backend| -> Vec<Vec<u64>> {
        let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
        let out = Runtime::with_backend(4, backend).run(move |ctx| {
            let local = DistTensor::from_global(&t2, &g2, ctx.rank());
            let mut st = ParState::init(ctx, &g2, &local, &c2);
            for n in 0..3 {
                let _ = st.update_mode_exact(ctx, &c2, n);
            }
            let ops = ref_pp_init(ctx, &mut st, &c2);
            let p_p: Vec<Matrix> = st.dist_factors.iter().map(|f| f.p().clone()).collect();
            for n in 0..3 {
                let mut q = st.dist_factors[n].q().clone();
                q.scale(1.01);
                st.commit_update(ctx, n, q);
            }
            let mut bits = Vec::new();
            for n in 0..3 {
                let m = ref_pp_approx_correction(ctx, &st, &ops, &p_p, n);
                bits.extend(m.data().iter().map(|x| x.to_bits()));
            }
            bits
        });
        out.results
    };
    let rv = run(Backend::Rendezvous);
    let pp = run(Backend::P2p);
    for (rank, (a, b)) in rv.iter().zip(pp.iter()).enumerate() {
        assert_eq!(a, b, "ref-pp corrections diverged on rank {rank}");
    }
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn p2p_rank_panic_surfaces_instead_of_hanging() {
    // Fault injection through a real driver: rank 2 dies mid-initialization
    // while its peers sit in driver collectives on the channel transport.
    // The poison must wake them and the launcher must report the panic.
    let t = Arc::new(workload());
    let grid = ProcGrid::new(vec![2, 2, 1]);
    let cfg = base_cfg();
    let (t2, g2, c2) = (t, grid, cfg);
    let _ = Runtime::with_backend(4, Backend::P2p).run(move |ctx| {
        if ctx.rank() == 2 {
            panic!("injected rank failure");
        }
        let local = DistTensor::from_global(&t2, &g2, ctx.rank());
        par_cp_als(ctx, &g2, &local, &c2).report
    });
}
