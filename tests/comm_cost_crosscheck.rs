//! Driver-level cross-check of the measured communication ledger against
//! the closed-form Table I model (`pp_comm::model::sweep_cost`).
//!
//! `crates/comm/tests/collective_costs.rs` pins each collective's ledger
//! to its §II-E closed form; this suite closes the remaining gap: the
//! *composition* of collectives a real parallel sweep issues must agree
//! with the per-sweep Table I formulas up to the leading-order constants
//! the table drops. Concretely, for exact parallel ALS at small `P`:
//!
//! * measured messages per sweep = `c₁ · N log₂ P` and measured words per
//!   sweep = `c₂ · N s R / P^{1/N}` with **constants bounded and stable
//!   across P** — if an implementation change added a collective per mode
//!   or started shipping operator-sized payloads, the ratio would jump and
//!   this suite fails;
//! * the PP-approx sweep's horizontal communication stays within a
//!   constant factor of the exact sweep's (the core claim behind
//!   Algorithm 4: approximated steps do **not** add communication).

use parallel_pp::comm::model::{sweep_cost, Method};
use parallel_pp::comm::{CostCounters, Runtime};
use parallel_pp::core::par_als::par_cp_als;
use parallel_pp::core::par_pp::par_pp_cp_als;
use parallel_pp::core::{AlsConfig, SweepKind};
use parallel_pp::datagen::collinearity::{collinearity_tensor, CollinearityConfig};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::grid::{DistTensor, ProcGrid};
use std::sync::Arc;

const S: usize = 16;
const R: usize = 4;
const N: usize = 3;

/// Rank-0 ledger for an exact parallel run of `sweeps` sweeps.
fn measure_exact(p: usize, grid_dims: Vec<usize>, sweeps: usize) -> CostCounters {
    let t = Arc::new(noisy_rank(&[S; N], R, 0.1, 5));
    let cfg = AlsConfig::new(R).with_max_sweeps(sweeps).with_tol(0.0);
    let grid = ProcGrid::new(grid_dims);
    let out = Runtime::new(p).run(move |ctx| {
        let local = DistTensor::from_global(&t, &grid, ctx.rank());
        let _ = par_cp_als(ctx, &grid, &local, &cfg);
    });
    out.costs[0]
}

/// Steady-state per-sweep ledger: difference of a long and a short run
/// divided by the extra sweeps, cancelling init/gather costs.
fn per_sweep_exact(p: usize, grid_dims: Vec<usize>) -> (f64, f64) {
    let (s1, s2) = (2usize, 6usize);
    let a = measure_exact(p, grid_dims.clone(), s1);
    let b = measure_exact(p, grid_dims, s2);
    let d = (s2 - s1) as f64;
    (
        (b.messages - a.messages) as f64 / d,
        (b.comm_words - a.comm_words) as f64 / d,
    )
}

#[test]
fn exact_sweep_ledger_tracks_table1_scaling() {
    let cases: [(usize, Vec<usize>); 3] =
        [(2, vec![2, 1, 1]), (4, vec![2, 2, 1]), (8, vec![2, 2, 2])];
    let mut msg_ratios = Vec::new();
    let mut word_ratios = Vec::new();
    for (p, grid) in cases {
        let (msgs, words) = per_sweep_exact(p, grid);
        let model = sweep_cost(Method::Dt, N, S as f64, R as f64, p as f64);
        let mr = msgs / model.h_messages;
        let wr = words / model.h_words;
        // Leading-order constants: one exact update issues a handful of
        // collectives per mode (Reduce-Scatter, Gram All-Reduce, P-block
        // All-Gather, solve barrier) against the table's single N log P
        // term, so the constant sits in the low single digits.
        assert!((1.0..=12.0).contains(&mr), "P={p}: message ratio {mr}");
        assert!((0.05..=20.0).contains(&wr), "P={p}: word ratio {wr}");
        msg_ratios.push(mr);
        word_ratios.push(wr);
    }
    // The constants must be *stable* across P — that is what makes the
    // Table I expression the right asymptotic form.
    for ratios in [&msg_ratios, &word_ratios] {
        let (lo, hi) = ratios
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &r| (l.min(r), h.max(r)));
        assert!(
            hi / lo <= 3.0,
            "ratio drifts with P: {ratios:?} (model scaling violated)"
        );
    }
}

#[test]
fn pp_approx_sweeps_add_no_asymptotic_communication() {
    // Table I: PP-approx h_words = N s R / P^{1/N} — identical to the
    // exact sweep's. Measure a parallel PP run that reaches the regime and
    // charge-compare its per-sweep-kind ledgers.
    let ccfg = CollinearityConfig {
        s: 12,
        r: 3,
        order: 3,
        lo: 0.5,
        hi: 0.7,
    };
    let (t, _, _) = collinearity_tensor(&ccfg, 3);
    let t = Arc::new(t);
    let base = AlsConfig::new(3)
        .with_policy(parallel_pp::dtree::TreePolicy::MultiSweep)
        .with_pp_tol(0.3)
        .with_tol(1e-12);
    let grid = ProcGrid::new(vec![2, 2, 1]);

    // Two runs: up to just before the first approx sweep, and through a
    // few approx sweeps, so the delta isolates approx-sweep communication.
    let probe = {
        let (t2, g2, c2) = (t.clone(), grid.clone(), base.clone().with_max_sweeps(30));
        Runtime::new(4)
            .run(move |ctx| {
                let local = DistTensor::from_global(&t2, &g2, ctx.rank());
                par_pp_cp_als(ctx, &g2, &local, &c2).report
            })
            .results
            .remove(0)
    };
    let kinds: Vec<SweepKind> = probe.sweeps.iter().map(|s| s.kind).collect();
    let first_init = kinds.iter().position(|&k| k == SweepKind::PpInit);
    let Some(first_init) = first_init else {
        panic!("PP regime must activate for this cross-check");
    };
    let approx_after: usize = kinds[first_init + 1..]
        .iter()
        .take_while(|&&k| k == SweepKind::PpApprox)
        .count();
    assert!(approx_after >= 2, "need ≥ 2 consecutive approx sweeps");

    let measure = |sweeps: usize| -> CostCounters {
        let (t2, g2, c2) = (
            t.clone(),
            grid.clone(),
            base.clone().with_max_sweeps(sweeps),
        );
        Runtime::new(4)
            .run(move |ctx| {
                let local = DistTensor::from_global(&t2, &g2, ctx.rank());
                let _ = par_pp_cp_als(ctx, &g2, &local, &c2);
            })
            .costs[0]
    };
    // Per exact sweep (before the regime): sweeps 1..first_init.
    let e1 = measure(1);
    let e2 = measure(first_init);
    let exact_words = (e2.comm_words - e1.comm_words) as f64 / (first_init - 1).max(1) as f64;
    // Per approx sweep: the +1 skips the PpInit sweep itself.
    let a1 = measure(first_init + 1);
    let a2 = measure(first_init + 1 + approx_after);
    let approx_words = (a2.comm_words - a1.comm_words) as f64 / approx_after as f64;

    let model_exact = sweep_cost(Method::Msdt, 3, 12.0, 3.0, 4.0);
    let model_approx = sweep_cost(Method::PpApprox, 3, 12.0, 3.0, 4.0);
    assert_eq!(
        model_exact.h_words, model_approx.h_words,
        "Table I asserts identical leading-order horizontal words"
    );
    let ratio = approx_words / exact_words.max(1.0);
    assert!(
        (0.2..=5.0).contains(&ratio),
        "approx sweeps changed communication asymptotics: {approx_words} vs {exact_words} words/sweep"
    );
}
