//! Integration tests for the production extensions: nonnegative CP on the
//! image workloads, initialization strategies feeding every driver, CLI
//! grid factorization properties, and higher-order parallel runs.

use parallel_pp::comm::Runtime;
use parallel_pp::core::par_als::par_cp_als;
use parallel_pp::core::{cp_als_with_init, init_factors_with, nn_cp_als, AlsConfig, InitStrategy};
use parallel_pp::datagen::coil::{coil_tensor, CoilConfig};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::datagen::timelapse::{timelapse_tensor, TimelapseConfig};
use parallel_pp::dtree::TreePolicy;
use parallel_pp::grid::{DistTensor, ProcGrid};
use std::sync::Arc;

#[test]
fn nncp_on_coil_stays_nonnegative_and_fits() {
    // COIL-class tensors are the standard NNCP benchmark; pixel data is
    // nonnegative so the constrained model should fit nearly as well as
    // the unconstrained one.
    let t = coil_tensor(&CoilConfig {
        size: 16,
        objects: 3,
        poses: 12,
    });
    let cfg = AlsConfig::new(8).with_max_sweeps(40).with_tol(1e-6);
    let nn = nn_cp_als(&t, &cfg);
    for f in &nn.factors {
        assert!(f.data().iter().all(|&x| x >= 0.0));
    }
    assert!(
        nn.report.final_fitness > 0.6,
        "fitness {}",
        nn.report.final_fitness
    );
}

#[test]
fn nncp_on_timelapse_close_to_unconstrained() {
    let t = timelapse_tensor(
        &TimelapseConfig {
            height: 12,
            width: 14,
            bands: 8,
            times: 5,
            materials: 4,
            noise: 1e-3,
        },
        5,
    );
    let cfg = AlsConfig::new(5).with_max_sweeps(60).with_tol(1e-8);
    let un = parallel_pp::core::cp_als(&t, &cfg);
    let nn = nn_cp_als(&t, &cfg);
    // The scene is a sum of nonnegative rank-one terms, so the constraint
    // costs almost nothing.
    assert!(
        nn.report.final_fitness > un.report.final_fitness - 0.03,
        "nn {} vs un {}",
        nn.report.final_fitness,
        un.report.final_fitness
    );
}

#[test]
fn every_init_strategy_feeds_als() {
    let t = noisy_rank(&[10, 9, 8], 3, 0.05, 3);
    for s in [
        InitStrategy::Uniform,
        InitStrategy::Gaussian,
        InitStrategy::SketchedRange,
    ] {
        let init = init_factors_with(&t, 3, 7, s);
        let out = cp_als_with_init(
            &t,
            &AlsConfig::new(3).with_max_sweeps(50).with_tol(1e-7),
            init,
        );
        assert!(
            out.report.final_fitness > 0.9,
            "{s:?} fitness {}",
            out.report.final_fitness
        );
    }
}

#[test]
fn order5_parallel_matches_sequential() {
    // The engine and Algorithm 3 are order-generic; check at N = 5.
    let t = Arc::new(noisy_rank(&[4, 3, 4, 3, 4], 2, 0.1, 11));
    let cfg = AlsConfig::new(2)
        .with_max_sweeps(4)
        .with_tol(0.0)
        .with_policy(TreePolicy::MultiSweep);
    let seq = parallel_pp::core::cp_als(&t, &cfg);
    let grid = ProcGrid::new(vec![2, 1, 2, 1, 2]);
    let (t2, g2, c2) = (t.clone(), grid.clone(), cfg.clone());
    let out = Runtime::new(8).run(move |ctx| {
        let local = DistTensor::from_global(&t2, &g2, ctx.rank());
        par_cp_als(ctx, &g2, &local, &c2).report
    });
    for (a, b) in seq.report.sweeps.iter().zip(out.results[0].sweeps.iter()) {
        assert!(
            (a.fitness - b.fitness).abs() < 1e-8,
            "seq {} vs par {}",
            a.fitness,
            b.fitness
        );
    }
}

#[test]
fn fitness_is_deterministic_across_reruns() {
    // Same seed → identical trajectory, sequential and parallel.
    let t = Arc::new(noisy_rank(&[8, 8, 8], 2, 0.1, 23));
    let cfg = AlsConfig::new(2).with_max_sweeps(5).with_tol(0.0);
    let a = parallel_pp::core::cp_als(&t, &cfg);
    let b = parallel_pp::core::cp_als(&t, &cfg);
    for (x, y) in a.report.sweeps.iter().zip(b.report.sweeps.iter()) {
        assert_eq!(x.fitness, y.fitness);
    }
    let run_par = || {
        let (t2, c2) = (t.clone(), cfg.clone());
        let out = Runtime::new(4).run(move |ctx| {
            let g = ProcGrid::new(vec![2, 2, 1]);
            let local = DistTensor::from_global(&t2, &g, ctx.rank());
            par_cp_als(ctx, &g, &local, &c2).report
        });
        out.results.into_iter().next().unwrap()
    };
    let p1 = run_par();
    let p2 = run_par();
    for (x, y) in p1.sweeps.iter().zip(p2.sweeps.iter()) {
        assert_eq!(x.fitness, y.fitness, "parallel run must be deterministic");
    }
}
