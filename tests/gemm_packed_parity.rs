//! Property-based parity of the packed register-tiled GEMM against the
//! retained cache-blocked reference kernel (`gemm_slice_ref`) and, through
//! it, the seed implementation's semantics: all four `Trans` combinations,
//! odd/prime edge dimensions (every zero-padded edge micro-tile and panel
//! shape), and α/β ∈ {0, 1, other} — accumulate, overwrite, and scale
//! semantics.

use parallel_pp::tensor::gemm::{gemm_slice, gemm_slice_ref, Trans};
use parallel_pp::tensor::rng::{seeded, uniform_matrix};
use parallel_pp::tensor::Matrix;
use proptest::prelude::*;

/// Odd/prime-heavy dimension menus: m crosses micro-tile (8) and block
/// (64) boundaries, n covers the fixed-`n` widths 8/16/32 and ragged
/// widths around them, k crosses the 256-deep panel boundary.
const MS: &[usize] = &[1, 3, 7, 8, 9, 17, 31, 64, 67, 129];
const NS: &[usize] = &[1, 2, 5, 7, 8, 9, 13, 16, 17, 23, 32, 37, 48];
const KS: &[usize] = &[1, 2, 5, 11, 37, 96, 131, 256, 257, 300];
const ALPHAS: &[f64] = &[0.0, 1.0, -1.5];
const BETAS: &[f64] = &[0.0, 1.0, 0.5];

fn trans_of(bit: usize) -> Trans {
    if bit == 1 {
        Trans::Yes
    } else {
        Trans::No
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packed_matches_blocked_reference(
        mi in 0usize..MS.len(),
        ni in 0usize..NS.len(),
        ki in 0usize..KS.len(),
        ta_bit in 0usize..2,
        tb_bit in 0usize..2,
        ai in 0usize..ALPHAS.len(),
        bi in 0usize..BETAS.len(),
        seed in 0u64..1000,
    ) {
        let (m, n, k) = (MS[mi], NS[ni], KS[ki]);
        let (ta, tb) = (trans_of(ta_bit), trans_of(tb_bit));
        let (alpha, beta) = (ALPHAS[ai], BETAS[bi]);
        let (ar, ac) = match ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let mut rng = seeded(seed);
        let a = uniform_matrix(ar, ac, &mut rng);
        let b = uniform_matrix(br, bc, &mut rng);
        let c0 = uniform_matrix(m, n, &mut rng);

        let mut c_packed = c0.clone();
        gemm_slice(
            ta, tb, alpha,
            a.data(), ar, ac,
            b.data(), br, bc,
            beta,
            c_packed.data_mut(), m, n,
        );
        let mut c_ref = c0.clone();
        gemm_slice_ref(
            ta, tb, alpha,
            a.data(), ar, ac,
            b.data(), br, bc,
            beta,
            c_ref.data_mut(), m, n,
        );

        // Both kernels accumulate each element with |k| same-magnitude
        // products (inputs are O(1)); FMA vs mul+add and different
        // blocking give O(k·ε) rounding differences at most.
        let tol = 1e-12 * (k as f64).max(1.0) * alpha.abs().max(1.0);
        let diff = c_packed.max_abs_diff(&c_ref);
        prop_assert!(
            diff < tol.max(1e-12),
            "({m},{n},{k}) {ta:?},{tb:?} α={alpha} β={beta}: diff {diff}"
        );
    }

    #[test]
    fn packed_matmul_respects_identity(
        mi in 0usize..MS.len(),
        ni in 0usize..NS.len(),
        seed in 0u64..1000,
    ) {
        // A·I = A through the packed path (n picks the panel dispatch).
        let (m, n) = (MS[mi], NS[ni]);
        let mut rng = seeded(seed);
        let a = uniform_matrix(m, n, &mut rng);
        let id = Matrix::identity(n);
        let got = a.matmul(&id);
        prop_assert!(got.max_abs_diff(&a) < 1e-12);
    }
}
