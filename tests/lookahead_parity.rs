//! Cross-mode lookahead must be invisible in the results: fitness traces
//! and factors are **bit-identical** with lookahead on vs. off, for both
//! tree policies, in the exact and PP regimes, at any pool width. The
//! speculation is keyed by factor versions and a stale speculation is
//! discarded, never used — these tests pin that invariant end to end.

use parallel_pp::core::{cp_als, pp_cp_als, AlsConfig, SweepKind};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::dtree::TreePolicy;

mod common;
use common::{assert_identical, override_lock};

fn exact_cfg(policy: TreePolicy) -> AlsConfig {
    AlsConfig::new(8)
        .with_policy(policy)
        .with_max_sweeps(8)
        .with_tol(0.0)
}

/// Exact ALS: lookahead on vs. off, both policies, at the ambient pool
/// width (the CI matrix re-runs this under PP_NUM_THREADS=1 and =4).
#[test]
fn exact_als_identical_with_and_without_lookahead() {
    let t = noisy_rank(&[40, 40, 40], 6, 0.05, 21);
    for policy in [TreePolicy::Standard, TreePolicy::MultiSweep] {
        let on = cp_als(&t, &exact_cfg(policy).with_lookahead(true));
        let off = cp_als(&t, &exact_cfg(policy).with_lookahead(false));
        assert_identical(&on, &off);
        assert_eq!(
            on.report.stats.ttm_count, off.report.stats.ttm_count,
            "lookahead must not change how many TTMs run ({policy:?})"
        );
        assert!(
            on.report.stats.spec_hits > 0,
            "lookahead never hit ({policy:?}); the test is vacuous"
        );
        assert_eq!(off.report.stats.spec_launched, 0);
    }
}

/// Exact ALS under an explicitly pinned 4-thread pool, where speculative
/// TTMs genuinely run concurrently with the solve.
#[test]
fn exact_als_identical_under_pinned_4_threads() {
    let _serial = override_lock();
    let t = noisy_rank(&[40, 40, 40], 6, 0.05, 33);
    for policy in [TreePolicy::Standard, TreePolicy::MultiSweep] {
        let on = cp_als(&t, &exact_cfg(policy).with_threads(4).with_lookahead(true));
        let off = cp_als(&t, &exact_cfg(policy).with_threads(4).with_lookahead(false));
        assert_identical(&on, &off);
    }
}

/// PP regime: the driver alternates exact sweeps (with lookahead) and PP
/// approximated sweeps; the whole schedule and trace must match bitwise.
#[test]
fn pp_als_identical_with_and_without_lookahead() {
    let t = noisy_rank(&[40, 40, 40], 6, 0.05, 55);
    for policy in [TreePolicy::Standard, TreePolicy::MultiSweep] {
        let cfg = AlsConfig::new(8)
            .with_policy(policy)
            .with_max_sweeps(20)
            .with_tol(0.0)
            // Loose ε so the run actually enters the PP regime.
            .with_pp_tol(0.5);
        let on = pp_cp_als(&t, &cfg.clone().with_lookahead(true));
        let off = pp_cp_als(&t, &cfg.with_lookahead(false));
        assert!(
            on.report.sweeps.iter().any(|s| s.kind == SweepKind::PpInit),
            "PP regime never engaged ({policy:?}); loosen pp_tol"
        );
        assert_identical(&on, &off);
    }
}
