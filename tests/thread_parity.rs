//! End-to-end determinism of the solvers across pool widths: `cp_als` and
//! `pp_cp_als` must produce **identical** fitness traces and factors under
//! a 1-thread pool and an N-thread pool. Every parallel kernel partitions
//! its output disjointly and computes each element with a fixed-order
//! sequential loop, so equality is exact (bitwise), not approximate.
//!
//! The 40³ tensor is chosen to actually cross the GEMM parallel-work
//! threshold (K·s·R = 1600·40·8 ≈ 5×10⁵ ≥ 2¹⁶), so the N-thread run
//! really exercises the pooled parallel paths.

use parallel_pp::core::{cp_als, pp_cp_als, AlsConfig, AlsSession, SessionKind};
use parallel_pp::datagen::lowrank::noisy_rank;
use parallel_pp::dtree::TreePolicy;

mod common;
use common::{assert_identical, override_lock};

#[test]
fn cp_als_trace_identical_under_1_and_n_threads() {
    let _serial = override_lock();
    let t = noisy_rank(&[40, 40, 40], 6, 0.05, 21);
    let run = |threads: usize| {
        cp_als(
            &t,
            &AlsConfig::new(8)
                .with_max_sweeps(8)
                .with_tol(0.0)
                .with_threads(threads),
        )
    };
    let serial = run(1);
    let parallel = run(4);
    assert_identical(&serial, &parallel);
}

#[test]
fn msdt_cp_als_trace_identical_under_1_and_n_threads() {
    let _serial = override_lock();
    let t = noisy_rank(&[40, 40, 40], 6, 0.05, 33);
    let run = |threads: usize| {
        cp_als(
            &t,
            &AlsConfig::new(8)
                .with_policy(TreePolicy::MultiSweep)
                .with_max_sweeps(8)
                .with_tol(0.0)
                .with_threads(threads),
        )
    };
    let serial = run(1);
    let parallel = run(4);
    assert_identical(&serial, &parallel);
}

#[test]
fn pp_cp_als_trace_identical_under_1_and_n_threads() {
    let _serial = override_lock();
    let t = noisy_rank(&[40, 40, 40], 6, 0.05, 55);
    let run = |threads: usize| {
        pp_cp_als(
            &t,
            &AlsConfig::new(8)
                .with_max_sweeps(20)
                .with_tol(0.0)
                // Loose ε so the run actually enters the PP regime and the
                // parallel pair-operator construction is exercised.
                .with_pp_tol(0.5)
                .with_threads(threads),
        )
    };
    let serial = run(1);
    let parallel = run(4);
    // The PP regime must have fired for this test to mean anything.
    assert!(
        serial
            .report
            .sweeps
            .iter()
            .any(|s| s.kind == parallel_pp::core::SweepKind::PpInit),
        "PP regime never engaged; loosen pp_tol"
    );
    assert_identical(&serial, &parallel);
}

#[test]
fn sparse_msdt_trace_identical_under_1_and_n_threads() {
    // The semi-sparse chain (csf_ttm + ss_mttv) partitions its output
    // panels disjointly, so MSDT on a sparse input must be bitwise
    // deterministic across pool widths. Density is chosen so the entry
    // count crosses the kernels' parallel-work threshold.
    let _serial = override_lock();
    let (sp, _) = parallel_pp::datagen::sparse::sparse_lowrank(&[40, 36, 30], 4, 0.12, 71);
    let run = |threads: usize| {
        AlsSession::new_sparse(
            &sp,
            &AlsConfig::new(8)
                .with_policy(TreePolicy::MultiSweep)
                .with_max_sweeps(6)
                .with_tol(0.0)
                .with_threads(threads),
            SessionKind::Exact,
        )
        .run()
    };
    let serial = run(1);
    assert!(
        serial.report.stats.semisparse_ttm_flops > 0,
        "semi-sparse chain never ran"
    );
    assert_identical(&serial, &run(4));
}

#[test]
fn sparse_pp_trace_identical_under_1_and_n_threads() {
    let _serial = override_lock();
    let (sp, _) = parallel_pp::datagen::sparse::sparse_lowrank(&[40, 36, 30], 4, 0.12, 77);
    let run = |threads: usize| {
        AlsSession::new_sparse(
            &sp,
            &AlsConfig::new(8)
                .with_policy(TreePolicy::MultiSweep)
                .with_max_sweeps(18)
                .with_tol(0.0)
                .with_pp_tol(0.5)
                .with_threads(threads),
            SessionKind::Pp,
        )
        .run()
    };
    let serial = run(1);
    assert!(
        serial
            .report
            .sweeps
            .iter()
            .any(|s| s.kind == parallel_pp::core::SweepKind::PpInit),
        "PP regime never engaged; loosen pp_tol"
    );
    assert_identical(&serial, &run(4));
}
