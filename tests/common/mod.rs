//! Helpers shared by the end-to-end parity suites (`thread_parity`,
//! `lookahead_parity`): bitwise run comparison and serialization of
//! sections that pin the process-global pool width.

use parallel_pp::core::AlsOutput;
use std::sync::Mutex;

/// The thread override is process-global and the test harness runs tests
/// concurrently, so pinned sections must be serialized — otherwise one
/// test's "1-thread" baseline could silently run wide under another's pin.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Take the override lock (poison-tolerant).
pub fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Assert two driver runs are **bitwise identical**: same sweep schedule,
/// bit-equal fitness trace, bit-equal factors.
pub fn assert_identical(a: &AlsOutput, b: &AlsOutput) {
    assert_eq!(a.report.sweeps.len(), b.report.sweeps.len(), "sweep count");
    for (i, (sa, sb)) in a
        .report
        .sweeps
        .iter()
        .zip(b.report.sweeps.iter())
        .enumerate()
    {
        assert_eq!(sa.kind, sb.kind, "sweep kind diverged at sweep {i}");
        assert_eq!(
            sa.fitness.to_bits(),
            sb.fitness.to_bits(),
            "fitness diverged at sweep {i}: {} vs {}",
            sa.fitness,
            sb.fitness
        );
    }
    for (n, (fa, fb)) in a.factors.iter().zip(b.factors.iter()).enumerate() {
        assert_eq!(fa.data(), fb.data(), "factor {n} diverged");
    }
}
